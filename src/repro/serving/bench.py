"""Fleet-serving performance harness.

Measures multi-stream window-scoring throughput two ways over the *same*
fleet and the *same* pre-materialized arrival batches:

* **sequential** — the per-deployment loop (one ``Deployment.scores``
  call per stream per round), the way PR 1's API serves streams;
* **batched** — the :class:`~repro.serving.MicroBatcher` path (windows of
  all streams sharing a scoring model coalesced into one forward).

Both paths are timed with warmup rounds and repeated interleaved passes,
reporting windows/sec plus p50/p95 per-round latency, and the harness
verifies the two paths' scores are bit-identical — the batched fleet is
only a throughput optimization, never an accuracy change.  Results are
written as a ``BENCH_*.json`` artifact so CI can gate on regressions.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass, field

import numpy as np

from ..metrics import percentile
from ..runtime import EngineRequest, resolve_policy
from .fleet import build_fleet
from .sharded import build_sharded_fleet
from ..errors import ConfigError

__all__ = ["BenchConfig", "run_benchmark", "run_shard_benchmark",
           "run_engine_parity", "write_benchmark"]

DEFAULT_BENCH_PATH = "BENCH_2.json"
DEFAULT_SHARD_BENCH_PATH = "BENCH_3.json"

#: The backend × policy matrix :func:`run_engine_parity` sweeps.
PARITY_BACKENDS = ("inline", "sharded")
PARITY_POLICIES = ("fair", "greedy", "priority")


@dataclass
class BenchConfig:
    """Shape of the serving benchmark.

    ``windows_per_step`` defaults to small arrival batches — an edge
    camera emits a window every few frames, so per-tick arrivals are tiny
    and per-call fixed costs dominate the sequential loop.  That is the
    regime micro-batching exists for.
    """

    streams: int = 16
    windows_per_step: int = 2
    rounds: int = 8          # serving rounds measured per pass
    repeats: int = 5         # timed passes per mode (interleaved)
    warmup: int = 2          # untimed passes per mode
    missions: list[str] = field(default_factory=lambda: ["Stealing"])
    max_batch_windows: int | None = None
    stream_seed: int = 100


def _percentile(samples: list[float], q: float,
                phase: str = "latency") -> float:
    # Shared guard (see repro.metrics): an empty sample list raises a
    # ValueError naming the phase, not numpy's bare IndexError.
    return percentile(samples, q, phase=phase)


def _mode_stats(latencies: list[float], windows_per_round: int,
                phase: str = "serving") -> dict:
    if not latencies:
        raise ConfigError(
            f"benchmark phase {phase!r} recorded no timed rounds "
            "(zero-round stream or repeats=0?); cannot summarize an "
            "empty latency list")
    total = float(np.sum(latencies))
    return {
        "rounds_timed": len(latencies),
        "total_seconds": total,
        "windows_per_sec": windows_per_round * len(latencies) / total,
        "p50_ms": _percentile(latencies, 50, phase) * 1e3,
        "p95_ms": _percentile(latencies, 95, phase) * 1e3,
    }


def run_benchmark(pipeline, config: BenchConfig | None = None,
                  _collect_batched_scores: list | None = None) -> dict:
    """Run the fleet-serving benchmark over ``pipeline``; returns the
    result payload (see module docstring for what is measured).

    ``_collect_batched_scores`` (internal) receives one ``{stream name:
    scores}`` dict per timed round from the parity pass — the shard
    benchmark reuses them as its bit-parity reference instead of
    re-scoring every round.
    """
    cfg = config or BenchConfig()
    fleet = build_fleet(pipeline, cfg.missions, cfg.streams,
                        adaptive=False, share_models=True,
                        windows_per_step=cfg.windows_per_step,
                        stream_seed=cfg.stream_seed,
                        max_batch_windows=cfg.max_batch_windows)
    slots = fleet.slots
    names = [slot.name for slot in slots]

    # Pre-materialize every round's arrival windows so stream generation
    # is excluded from the timings (we are measuring scoring, not the
    # synthetic data generator).  Rounds are clamped to the streams'
    # length: a benchmark cannot serve more steps than the streams hold.
    available = min(len(slot.stream) for slot in slots)
    timed_rounds = min(cfg.rounds, available)
    rounds: list[list[np.ndarray]] = []
    for round_index in range(timed_rounds):
        rounds.append([np.asarray(slot.stream.batch(round_index).windows,
                                  dtype=np.float64)
                       for slot in slots])
    windows_per_round = sum(w.shape[0] for w in rounds[0])

    def run_sequential(round_windows: list[np.ndarray]) -> list[np.ndarray]:
        return [slot.deployment.scores(w)
                for slot, w in zip(slots, round_windows)]

    def run_batched(round_windows: list[np.ndarray]) -> list[np.ndarray]:
        # The engine path: fleet.score_only -> ServingEngine ->
        # InlineBackend -> one coalesced micro-batched forward per
        # distinct scoring model, in slot attach order.
        scored = fleet.score_only(dict(zip(names, round_windows)))
        return [scored[name] for name in names]

    # Parity first: the batched path must reproduce the sequential scores
    # bit for bit on every round.
    max_abs_diff = 0.0
    identical = True
    for round_windows in rounds:
        seq = run_sequential(round_windows)
        bat = run_batched(round_windows)
        if _collect_batched_scores is not None:
            _collect_batched_scores.append(
                {slot.name: s for slot, s in zip(slots, bat)})
        for a, b in zip(seq, bat):
            if not np.array_equal(a, b):
                identical = False
                max_abs_diff = max(max_abs_diff, float(np.abs(a - b).max()))

    for _ in range(cfg.warmup):
        for round_windows in rounds:
            run_sequential(round_windows)
            run_batched(round_windows)

    sequential_lat: list[float] = []
    batched_lat: list[float] = []
    for _ in range(cfg.repeats):
        # Interleave the two modes so machine drift hits both equally.
        for round_windows in rounds:
            start = time.perf_counter()
            run_sequential(round_windows)
            sequential_lat.append(time.perf_counter() - start)
        for round_windows in rounds:
            start = time.perf_counter()
            run_batched(round_windows)
            batched_lat.append(time.perf_counter() - start)

    sequential = _mode_stats(sequential_lat, windows_per_round,
                             phase="sequential")
    batched = _mode_stats(batched_lat, windows_per_round, phase="batched")
    return {
        "benchmark": "fleet_serving",
        "config": {
            "streams": cfg.streams,
            "windows_per_step": cfg.windows_per_step,
            "rounds": timed_rounds,
            "repeats": cfg.repeats,
            "warmup": cfg.warmup,
            "missions": list(cfg.missions),
            "max_batch_windows": cfg.max_batch_windows,
            "windows_per_round": windows_per_round,
        },
        "sequential": sequential,
        "batched": batched,
        "speedup": batched["windows_per_sec"] / sequential["windows_per_sec"],
        "parity": {"identical": identical, "max_abs_diff": max_abs_diff},
        "engine": fleet.engine.stats(),
        "environment": _environment(),
    }


def _environment() -> dict:
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
    }


def run_shard_benchmark(pipeline, config: BenchConfig | None = None,
                        shard_counts: tuple[int, ...] = (1, 2, 4)) -> dict:
    """Shard-scaling curve next to the sequential/batched baselines.

    Runs :func:`run_benchmark` for the single-process baselines, then for
    each shard count builds a :class:`~repro.serving.ShardedFleet` over
    the *same* streams and models, pre-materializes the same arrival
    rounds inside each worker, verifies the sharded scores are
    bit-identical to the single-process batched scores, and times the
    multi-process rounds.  Speedups are relative to the single-process
    *batched* fleet — the bar sharding has to clear.

    Sharded throughput scales with physical cores; on a 1–2 core machine
    the curve records IPC overhead instead of speedup (``environment.
    cpu_count`` is stored so readers can tell which regime a result came
    from), which is why CI gates on parity, not speedup.
    """
    cfg = config or BenchConfig()
    # The baseline run's parity pass doubles as the sharded reference:
    # one {stream: scores} dict per round of single-process batched
    # scoring (streams are seed-deterministic, so the sharded fleets
    # below serve identical arrivals).
    reference: list[dict[str, np.ndarray]] = []
    base = run_benchmark(pipeline, cfg, _collect_batched_scores=reference)
    timed_rounds = base["config"]["rounds"]
    windows_per_round = base["config"]["windows_per_round"]

    batched_wps = base["batched"]["windows_per_sec"]
    shard_results: dict[str, dict] = {}
    all_identical = base["parity"]["identical"]
    for count in shard_counts:
        sharded = build_sharded_fleet(
            pipeline, cfg.missions, cfg.streams, shards=count,
            adaptive=False, share_models=True,
            windows_per_step=cfg.windows_per_step,
            stream_seed=cfg.stream_seed,
            max_batch_windows=cfg.max_batch_windows)
        try:
            sharded.prime(timed_rounds)
            identical = True
            max_abs_diff = 0.0
            for index in range(timed_rounds):
                scored = sharded.score_round(index)
                for name, expected in reference[index].items():
                    if not np.array_equal(scored[name], expected):
                        identical = False
                        max_abs_diff = max(max_abs_diff, float(
                            np.abs(scored[name] - expected).max()))
            for _ in range(cfg.warmup):
                for index in range(timed_rounds):
                    sharded.score_round(index)
            latencies: list[float] = []
            for _ in range(cfg.repeats):
                for index in range(timed_rounds):
                    start = time.perf_counter()
                    sharded.score_round(index)
                    latencies.append(time.perf_counter() - start)
        finally:
            sharded.close()
        stats = _mode_stats(latencies, windows_per_round,
                            phase=f"{count}-shard")
        stats["speedup_vs_batched"] = stats["windows_per_sec"] / batched_wps
        stats["parity"] = {"identical": identical,
                           "max_abs_diff": max_abs_diff}
        all_identical = all_identical and identical
        shard_results[str(count)] = stats

    return {
        "benchmark": "sharded_fleet_serving",
        "config": {**base["config"], "shard_counts": list(shard_counts)},
        "sequential": base["sequential"],
        "batched": base["batched"],
        "speedup": base["speedup"],
        "shards": shard_results,
        "parity": {"identical": all_identical,
                   "batched": base["parity"]},
        "environment": _environment(),
    }


def _parity_fleet(pipeline, cfg: BenchConfig, backend: str, shards: int):
    kwargs = dict(adaptive=False, share_models=True,
                  windows_per_step=cfg.windows_per_step,
                  stream_seed=cfg.stream_seed,
                  max_batch_windows=cfg.max_batch_windows)
    if backend == "inline":
        return build_fleet(pipeline, cfg.missions, cfg.streams, **kwargs)
    if backend == "sharded":
        return build_sharded_fleet(pipeline, cfg.missions, cfg.streams,
                                   shards=shards, **kwargs)
    raise ConfigError(f"unknown parity backend {backend!r} "
                     f"(known: {', '.join(PARITY_BACKENDS)})")


def run_engine_parity(pipeline, config: BenchConfig | None = None,
                      shards: int = 2,
                      backends: tuple[str, ...] = PARITY_BACKENDS,
                      policies: tuple[str, ...] = PARITY_POLICIES) -> dict:
    """The backend × policy parity matrix.

    For every (backend, scheduling policy) combination, every stream's
    pre-materialized arrival rounds are submitted to a fresh fleet's
    :class:`~repro.runtime.ServingEngine` admission queues (streams get
    distinct priorities so the priority policy actually reorders) and
    served through policy-composed ``run_round`` calls until the queues
    drain.  Per-stream scores must be **bit-identical** to a seed-style
    direct ``DeploymentFleet.step()`` run over the same windows —
    policies and backends may only change round *composition* (recorded
    as ``engine_rounds``), never a single score bit.  The returned
    payload is embedded in the ``repro bench`` artifact and gates CI's
    perf-smoke lane.
    """
    cfg = config or BenchConfig()
    fleet = build_fleet(pipeline, cfg.missions, cfg.streams,
                        adaptive=False, share_models=True,
                        windows_per_step=cfg.windows_per_step,
                        stream_seed=cfg.stream_seed,
                        max_batch_windows=cfg.max_batch_windows)
    available = min(len(slot.stream) for slot in fleet.slots)
    rounds = min(cfg.rounds, available)
    stream_windows = {
        slot.name: [np.asarray(slot.stream.batch(r).windows,
                               dtype=np.float64) for r in range(rounds)]
        for slot in fleet.slots}
    reference: dict[str, list[np.ndarray]] = {name: []
                                              for name in fleet.names}
    for _ in range(rounds):
        for event in fleet.step(batched=True):
            reference[event.stream].append(event.scores)

    combinations: dict[str, dict] = {}
    all_identical = True
    for backend in backends:
        for policy in policies:
            target = _parity_fleet(pipeline, cfg, backend, shards)
            try:
                engine = target.engine
                engine.policy = resolve_policy(policy)
                # Interleave submissions round-by-round (every stream's
                # round 0, then round 1, ...) — the arrival pattern a
                # gateway would see; per-stream FIFO is what parity is
                # defined over.  Distinct priorities exercise the
                # priority policy's reordering.
                for round_index in range(rounds):
                    for position, name in enumerate(stream_windows):
                        engine.submit(EngineRequest(
                            op="ingest", stream=name,
                            windows=stream_windows[name][round_index],
                            priority=position))
                served: dict[str, list[np.ndarray]] = {
                    name: [] for name in stream_windows}
                engine_rounds = 0
                errors: list[str] = []
                while engine.has_pending():
                    for result in engine.run_round():
                        if result.kind == "event":
                            served[result.request.stream].append(
                                result.event.scores)
                        else:
                            errors.append(
                                f"{result.request.stream}: "
                                f"[{result.code}] {result.message}")
                    engine_rounds += 1
                identical = not errors
                max_abs_diff = 0.0
                compared = 0
                for name, expected_rounds in reference.items():
                    got_rounds = served[name]
                    if len(got_rounds) != len(expected_rounds):
                        identical = False
                        continue
                    for got, expected in zip(got_rounds, expected_rounds):
                        compared += 1
                        if not np.array_equal(got, expected):
                            identical = False
                            max_abs_diff = max(max_abs_diff, float(
                                np.abs(got - expected).max()))
                stats = engine.stats()
            finally:
                target.close()
            all_identical = all_identical and identical
            entry = {
                "identical": identical,
                "max_abs_diff": max_abs_diff,
                "responses_compared": compared,
                "engine_rounds": engine_rounds,
                "metrics": {"rounds": stats["rounds"],
                            "coalesce": stats.get("coalesce")},
            }
            if errors:
                entry["errors"] = errors[:10]
            combinations[f"{backend}:{policy}"] = entry

    return {
        "benchmark": "engine_parity",
        "config": {
            "streams": cfg.streams,
            "windows_per_step": cfg.windows_per_step,
            "rounds": rounds,
            "missions": list(cfg.missions),
            "shards": shards,
            "backends": list(backends),
            "policies": list(policies),
        },
        "combinations": combinations,
        "parity": {"identical": all_identical},
        "environment": _environment(),
    }


def format_engine_parity(result: dict) -> str:
    """Human-readable summary of an engine-parity payload."""
    cfg = result["config"]
    lines = [
        f"engine parity matrix: {cfg['streams']} stream(s) x "
        f"{cfg['rounds']} round(s), backends {cfg['backends']}, "
        f"policies {cfg['policies']}",
    ]
    for combo, entry in result["combinations"].items():
        lines.append(
            f"  {combo:<18s} identical: {str(entry['identical']):<5s}  "
            f"engine rounds: {entry['engine_rounds']:3d}  "
            f"responses: {entry['responses_compared']}")
    lines.append(f"  parity (all combinations): "
                 f"{result['parity']['identical']}")
    return "\n".join(lines)


def write_benchmark(result: dict, path: str = DEFAULT_BENCH_PATH) -> str:
    """Write the benchmark payload as pretty JSON; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def format_benchmark(result: dict) -> str:
    """Human-readable one-screen summary of a benchmark payload."""
    cfg = result["config"]
    seq = result["sequential"]
    bat = result["batched"]
    parity = result["parity"]
    lines = [
        f"fleet serving benchmark: {cfg['streams']} streams x "
        f"{cfg['windows_per_step']} windows/step "
        f"({cfg['windows_per_round']} windows/round, "
        f"{cfg['rounds']} rounds x {cfg['repeats']} repeats)",
        f"  sequential: {seq['windows_per_sec']:9.1f} windows/s   "
        f"p50 {seq['p50_ms']:7.2f} ms   p95 {seq['p95_ms']:7.2f} ms",
        f"  batched:    {bat['windows_per_sec']:9.1f} windows/s   "
        f"p50 {bat['p50_ms']:7.2f} ms   p95 {bat['p95_ms']:7.2f} ms",
        f"  speedup:    {result['speedup']:.2f}x   "
        f"scores identical: {parity['identical']}",
    ]
    for count, stats in result.get("shards", {}).items():
        lines.append(
            f"  {count:>2s} shard(s): {stats['windows_per_sec']:9.1f} windows/s   "
            f"p50 {stats['p50_ms']:7.2f} ms   "
            f"{stats['speedup_vs_batched']:.2f}x vs batched   "
            f"identical: {stats['parity']['identical']}")
    if "shards" in result:
        lines.append(f"  cores: {result['environment']['cpu_count']}")
    return "\n".join(lines)
