"""The deployment fleet: many concurrent streams behind one serving loop.

The paper deploys one edge camera against one drifting anomaly stream;
production serving means N cameras with mixed missions, each backed by a
:class:`~repro.api.Deployment`, all scored as fast as the hardware
allows.  :class:`DeploymentFleet` owns the per-stream runtimes and drives
them in lock-step rounds: each round pulls every live stream's arrival
batch, scores all pending windows through the :class:`MicroBatcher`
(streams sharing a scoring model coalesce into one forward), and
dispatches the per-stream score slices back into each deployment's
monitor/controller.

Streams can be attached and detached mid-run, and a whole fleet —
deployments, adaptation state, stream positions — checkpoints to a single
JSON file, deduplicating scoring models shared across static streams.

Since the ``repro.runtime`` extraction the fleet is a thin facade: it
owns stream *state* (slots, batcher, checkpoints) while the round loop
itself lives in :class:`~repro.runtime.ServingEngine` over an
:class:`~repro.runtime.InlineBackend` (``FleetEvent`` moved there too and
is re-exported here for compatibility).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..api.config import config_from_dict, config_to_dict
from ..api.deployment import Deployment
from ..data.streams import TrendShiftConfig, TrendShiftStream
from ..runtime.engine import FleetEvent, ServingEngine
from ..gnn.checkpoint import deployment_from_dict, deployment_to_dict
from ..utils.serialization import atomic_write_json
from .batcher import MicroBatcher
from ..errors import CheckpointError, ConfigError

__all__ = ["FLEET_FORMAT_VERSION", "FleetEvent", "StreamSlot",
           "DeploymentFleet", "build_fleet"]

FLEET_FORMAT_VERSION = 1


class StreamSlot:
    """One attached stream: a deployment plus its arrival source.

    ``stream`` is ideally a :class:`~repro.data.TrendShiftStream` (or any
    object with ``batch(step)`` and ``__len__``), which makes the slot
    random-access and therefore checkpointable; any iterable of
    :class:`~repro.data.StreamBatch` objects or raw ``(B, T, frame_dim)``
    arrays also works but cannot be saved mid-run.
    """

    def __init__(self, name: str, deployment: Deployment, stream):
        self.name = name
        self.deployment = deployment
        self.stream = stream
        self.cursor = 0       # next step for random-access streams
        self.done = False
        self._iterator = None  # lazily created for plain iterables

    @property
    def indexable(self) -> bool:
        return hasattr(self.stream, "batch") and hasattr(self.stream, "__len__")

    def next_batch(self):
        """The stream's next arrival batch, or ``None`` when exhausted."""
        if self.done:
            return None
        if self.indexable:
            if self.cursor >= len(self.stream):
                self.done = True
                return None
            batch = self.stream.batch(self.cursor)
            self.cursor += 1
            return batch
        if self._iterator is None:
            self._iterator = iter(self.stream)
        try:
            batch = next(self._iterator)
        except StopIteration:
            self.done = True
            return None
        self.cursor += 1
        return batch


class DeploymentFleet:
    """Batched lock-step serving over many concurrent deployment streams.

    A facade over a :class:`~repro.runtime.ServingEngine` with an
    :class:`~repro.runtime.InlineBackend`: the fleet owns the slots and
    the micro-batcher (state, checkpointing), the engine owns the round
    loop and its metrics.
    """

    def __init__(self, batcher: MicroBatcher | None = None,
                 policy=None, metrics=None):
        from ..runtime.backends import InlineBackend
        self.batcher = batcher or MicroBatcher()
        self._slots: dict[str, StreamSlot] = {}
        self.engine = ServingEngine(InlineBackend(self), policy=policy,
                                    metrics=metrics)

    @property
    def rounds(self) -> int:
        """Serving rounds run so far (counted by the engine)."""
        return self.engine.rounds

    @rounds.setter
    def rounds(self, value: int) -> None:
        self.engine.rounds = int(value)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def add(self, name: str, deployment: Deployment, stream) -> StreamSlot:
        """Attach a stream under ``name``; serving picks it up next round.

        A model instance may be shared across *static* deployments (that
        is what lets the micro-batcher coalesce their windows), but never
        where any sharer is adaptive: adaptation mutates the shared
        weights mid-round, which would make batched and sequential
        serving diverge and entangle the streams' trajectories.
        """
        if name in self._slots:
            raise ConfigError(f"stream {name!r} already attached")
        for other in self._slots.values():
            if (other.deployment.model is deployment.model
                    and (deployment.adaptive or other.deployment.adaptive)):
                raise ConfigError(
                    f"stream {name!r} shares a scoring model with "
                    f"{other.name!r} and at least one of them is adaptive; "
                    "adaptive deployments need private model copies")
        slot = StreamSlot(name, deployment, stream)
        self._slots[name] = slot
        return slot

    def remove(self, name: str) -> Deployment:
        """Detach a stream mid-run; returns its deployment for disposal."""
        try:
            slot = self._slots.pop(name)
        except KeyError:
            raise KeyError(f"no stream named {name!r} attached") from None
        return slot.deployment

    def __len__(self) -> int:
        return len(self._slots)

    def __contains__(self, name: str) -> bool:
        return name in self._slots

    @property
    def names(self) -> list[str]:
        return list(self._slots)

    @property
    def slots(self) -> list[StreamSlot]:
        return list(self._slots.values())

    @property
    def active_count(self) -> int:
        return sum(not slot.done for slot in self._slots.values())

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def step(self, batched: bool = True) -> list[FleetEvent]:
        """One serving round over every live stream.

        With ``batched`` (the default) all pending windows are scored
        through the micro-batcher — one coalesced forward per distinct
        scoring model — and each deployment ingests its precomputed score
        slice.  With ``batched=False`` each deployment scores its own
        windows (the sequential per-deployment loop; the benchmark's
        baseline).  Both paths produce bit-identical scores and adaptation
        decisions.
        """
        return self.engine.step(batched=batched)

    def serve(self, max_rounds: int | None = None, batched: bool = True):
        """Yield per-round event lists until every stream is exhausted
        (or ``max_rounds`` rounds have run)."""
        return self.engine.serve(max_rounds=max_rounds, batched=batched)

    def ingest_round(self, arrivals: dict, batched: bool = True,
                     scores: dict | None = None) -> dict[str, FleetEvent]:
        """One serving round over externally supplied arrival windows.

        ``arrivals`` maps attached stream names to ``(B, T, frame_dim)``
        window batches — the network gateway's entry point, where windows
        come over the wire instead of from each slot's own stream.  The
        round is scored exactly like :meth:`step` (one micro-batched
        forward per distinct scoring model, each deployment ingesting its
        precomputed slice), so gateway-served scores are bit-identical to
        a direct ``step()`` run over the same per-stream window sequence.
        Slot stream cursors are untouched.

        ``scores`` may carry each stream's precomputed anomaly scores
        (e.g. from a prior :meth:`score_only` call over the same
        windows); scoring is then skipped and the deployments ingest the
        given slices.  The forward is score-then-ingest either way, so a
        scoring failure (bad shapes, mixed window lengths) raises before
        any deployment's state is touched.
        """
        return self.engine.ingest_round(arrivals, batched=batched,
                                        scores=scores)

    def score_only(self, arrivals: dict) -> dict[str, np.ndarray]:
        """Score externally supplied windows without feeding any
        deployment's monitor (the gateway's ``scores`` op); same
        micro-batched forward as :meth:`ingest_round`."""
        return self.engine.score_only(arrivals)

    # ------------------------------------------------------------------
    # Resource management — no-ops, mirroring ShardedFleet's surface so
    # callers (GatewayServer, examples) can manage either fleet type
    # uniformly.
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Nothing to release in-process; exists for fleet-type parity."""

    def __enter__(self) -> "DeploymentFleet":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Whole-fleet snapshot; scoring models shared across slots are
        stored once and re-shared on restore."""
        models: list[dict] = []
        model_index: dict[int, int] = {}
        slots = []
        for slot in self._slots.values():
            if not slot.indexable or not isinstance(slot.stream,
                                                    TrendShiftStream):
                raise CheckpointError(
                    f"stream {slot.name!r} is not a TrendShiftStream; "
                    "only random-access streams can be checkpointed")
            key = id(slot.deployment.model)
            if key not in model_index:
                model_index[key] = len(models)
                models.append(deployment_to_dict(slot.deployment.model))
            slots.append({
                "name": slot.name,
                "model_index": model_index[key],
                "deployment": slot.deployment.to_dict(include_model=False),
                "stream_config": config_to_dict(slot.stream.config),
                "cursor": slot.cursor,
                "done": slot.done,
            })
        return {"fleet_format_version": FLEET_FORMAT_VERSION,
                "models": models, "slots": slots,
                "max_batch_windows": self.batcher.max_batch_windows,
                "rounds": self.rounds}

    def save(self, path: str | Path) -> None:
        atomic_write_json(path, self.to_dict())

    @classmethod
    def from_dict(cls, payload: dict, embedding_model,
                  generator) -> "DeploymentFleet":
        """Rebuild a fleet saved by :meth:`save`.

        Like :meth:`Deployment.load`, the shared joint embedding model —
        and here also the frame generator backing the synthetic streams —
        are infrastructure passed in rather than stored.
        """
        version = payload.get("fleet_format_version")
        if version != FLEET_FORMAT_VERSION:
            raise CheckpointError(f"unsupported fleet format version: {version}")
        fleet = cls(MicroBatcher(payload.get("max_batch_windows")))
        fleet.rounds = int(payload.get("rounds", 0))
        models = [deployment_from_dict(p, embedding_model)
                  for p in payload["models"]]
        for entry in payload["slots"]:
            deployment = Deployment.from_dict(
                entry["deployment"], embedding_model,
                model=models[entry["model_index"]])
            stream = TrendShiftStream(
                generator,
                config_from_dict(TrendShiftConfig, entry["stream_config"]))
            slot = fleet.add(entry["name"], deployment, stream)
            slot.cursor = int(entry["cursor"])
            slot.done = bool(entry["done"])
        return fleet

    @classmethod
    def load(cls, path: str | Path, embedding_model,
             generator) -> "DeploymentFleet":
        return cls.from_dict(json.loads(Path(path).read_text()),
                             embedding_model, generator)


def build_fleet(pipeline, missions: list[str], streams: int,
                adaptive: bool = False, share_models: bool = True,
                windows_per_step: int = 2, stream_seed: int = 100,
                max_batch_windows: int | None = None,
                **stream_overrides) -> DeploymentFleet:
    """Assemble a fleet of ``streams`` trend-shift streams over a
    :class:`~repro.api.Pipeline`.

    Missions are assigned round-robin.  Static fleets (``adaptive=False``)
    with ``share_models`` reuse one trained scoring model per mission, the
    configuration under which micro-batching coalesces across streams;
    adaptive deployments always own a private model copy, since continuous
    KG adaptation makes each stream's weights diverge.
    """
    if streams < 1:
        raise ConfigError("need at least one stream")
    if not missions:
        raise ConfigError("need at least one mission")
    fleet = DeploymentFleet(MicroBatcher(max_batch_windows))
    shared: dict[str, object] = {}
    for index in range(streams):
        mission = missions[index % len(missions)]
        if adaptive:
            deployment = pipeline.deploy(mission, adaptive=True)
        elif share_models:
            if mission not in shared:
                shared[mission] = pipeline.train(mission)
            deployment = Deployment(shared[mission], mission=mission,
                                    adaptive=False)
        else:
            deployment = pipeline.deploy(mission, adaptive=False)
        stream = pipeline.stream(mission, None,
                                 windows_per_step=windows_per_step,
                                 seed=stream_seed + index, **stream_overrides)
        fleet.add(f"{mission.lower()}-{index}", deployment, stream)
    return fleet
