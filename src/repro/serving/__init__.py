"""Multi-stream serving: deployment fleets, micro-batching, benchmarks.

The paper's runtime is one camera, one stream, one model.  This package
is the production layer above it:

:class:`MicroBatcher`
    Coalesces pending windows across streams that share a scoring model
    into single batched forwards, with bit-identical scores.
:class:`DeploymentFleet`
    Owns N concurrent :class:`~repro.api.Deployment` streams (mixed
    missions, mid-run attach/detach), serves them in batched lock-step
    rounds, and checkpoints the whole fleet to one file.
:class:`ShardedFleet`
    Partitions a fleet across worker processes (round-robin by attach
    order, one micro-batcher per shard) and merges per-round events back
    in stable stream order — scores bit-identical to single-process
    batched serving, throughput scaling with physical cores.
:func:`run_benchmark` / :func:`run_shard_benchmark`
    The throughput harnesses behind ``repro bench``: sequential-vs-
    batched windows/sec with p50/p95 latency, plus the shard-scaling
    curve, written as ``BENCH_*.json`` for CI regression gating.
"""

from .batcher import MicroBatcher, ScoreRequest
from .bench import (BenchConfig, DEFAULT_BENCH_PATH,
                    DEFAULT_SHARD_BENCH_PATH, format_benchmark,
                    run_benchmark, run_shard_benchmark, write_benchmark)
from .fleet import DeploymentFleet, FleetEvent, StreamSlot, build_fleet
from .sharded import (FleetInfra, ShardedFleet, build_sharded_fleet,
                      partition_fleet_payload)

__all__ = [
    "MicroBatcher",
    "ScoreRequest",
    "DeploymentFleet",
    "FleetEvent",
    "StreamSlot",
    "build_fleet",
    "FleetInfra",
    "ShardedFleet",
    "build_sharded_fleet",
    "partition_fleet_payload",
    "BenchConfig",
    "run_benchmark",
    "run_shard_benchmark",
    "write_benchmark",
    "format_benchmark",
    "DEFAULT_BENCH_PATH",
    "DEFAULT_SHARD_BENCH_PATH",
]
