"""Multi-stream serving: deployment fleets, micro-batching, benchmarks.

The paper's runtime is one camera, one stream, one model.  This package
is the production layer above it:

:class:`MicroBatcher`
    Coalesces pending windows across streams that share a scoring model
    into single batched forwards, with bit-identical scores.
:class:`DeploymentFleet`
    Owns N concurrent :class:`~repro.api.Deployment` streams (mixed
    missions, mid-run attach/detach), serves them in batched lock-step
    rounds, and checkpoints the whole fleet to one file.
:class:`ShardedFleet`
    Partitions a fleet across worker processes (round-robin by attach
    order, one micro-batcher per shard) and merges per-round events back
    in stable stream order — scores bit-identical to single-process
    batched serving, throughput scaling with physical cores.
:func:`run_benchmark` / :func:`run_shard_benchmark` / :func:`run_engine_parity`
    The throughput harnesses behind ``repro bench``: sequential-vs-
    batched windows/sec with p50/p95 latency, the shard-scaling curve,
    and the engine backend × scheduling-policy bit-parity matrix,
    written as ``BENCH_*.json`` for CI regression gating.

Both fleet classes are facades over the unified serving core: the round
loop (and its metrics) lives in :class:`repro.runtime.ServingEngine`,
executing through an :class:`~repro.runtime.InlineBackend`
(``DeploymentFleet``) or :class:`~repro.runtime.ShardedBackend`
(``ShardedFleet``); the fleets own stream state and checkpointing.
"""

from ..errors import FleetError, WorkerError, WorkerStartupError
from .batcher import MicroBatcher, ScoreRequest
from .bench import (BenchConfig, DEFAULT_BENCH_PATH,
                    DEFAULT_SHARD_BENCH_PATH, format_benchmark,
                    run_benchmark, run_engine_parity, run_shard_benchmark,
                    write_benchmark)
from .fleet import DeploymentFleet, FleetEvent, StreamSlot, build_fleet
from .sharded import (FleetInfra, ShardedFleet, build_sharded_fleet,
                      partition_fleet_payload)
from .shm_ring import (DEFAULT_RING_BYTES, RingBuffer, RingError,
                       dumps_message, loads_message)

__all__ = [
    "MicroBatcher",
    "ScoreRequest",
    "DeploymentFleet",
    "FleetEvent",
    "StreamSlot",
    "build_fleet",
    "FleetInfra",
    "ShardedFleet",
    "build_sharded_fleet",
    "partition_fleet_payload",
    "RingBuffer",
    "RingError",
    "DEFAULT_RING_BYTES",
    "dumps_message",
    "loads_message",
    "BenchConfig",
    "run_benchmark",
    "run_shard_benchmark",
    "run_engine_parity",
    "write_benchmark",
    "format_benchmark",
    "DEFAULT_BENCH_PATH",
    "DEFAULT_SHARD_BENCH_PATH",
    "FleetError",
    "WorkerError",
    "WorkerStartupError",
]
