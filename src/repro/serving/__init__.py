"""Multi-stream serving: deployment fleets, micro-batching, benchmarks.

The paper's runtime is one camera, one stream, one model.  This package
is the production layer above it:

:class:`MicroBatcher`
    Coalesces pending windows across streams that share a scoring model
    into single batched forwards, with bit-identical scores.
:class:`DeploymentFleet`
    Owns N concurrent :class:`~repro.api.Deployment` streams (mixed
    missions, mid-run attach/detach), serves them in batched lock-step
    rounds, and checkpoints the whole fleet to one file.
:func:`run_benchmark`
    The throughput harness behind ``repro bench``: sequential-vs-batched
    windows/sec with p50/p95 latency, written as ``BENCH_*.json`` for CI
    regression gating.
"""

from .batcher import MicroBatcher, ScoreRequest
from .bench import (BenchConfig, DEFAULT_BENCH_PATH, format_benchmark,
                    run_benchmark, write_benchmark)
from .fleet import DeploymentFleet, FleetEvent, StreamSlot, build_fleet

__all__ = [
    "MicroBatcher",
    "ScoreRequest",
    "DeploymentFleet",
    "FleetEvent",
    "StreamSlot",
    "build_fleet",
    "BenchConfig",
    "run_benchmark",
    "write_benchmark",
    "format_benchmark",
    "DEFAULT_BENCH_PATH",
]
