"""Shared-memory SPSC ring buffers for parent<->worker shard traffic.

Pickling a round's windows and scores through a :mod:`multiprocessing`
pipe costs two copies and a kernel round-trip per message; at gateway
rates the pipe becomes the sharded fleet's hot path.  This module moves
the *payload* bytes into a :class:`multiprocessing.shared_memory` ring
buffer per direction — the pipe stays as the control plane (a tiny
``("shm", length)`` doorbell per message, plus error/"stop" signaling
and the happens-before edge that makes the lock-free ring safe).

Single-producer/single-consumer by construction: the sharded fleet
keeps at most one outstanding request per shard (send, then receive),
so by the time either side touches the ring the doorbell message has
already synchronized it with the peer — positions never race.

Layout: an 16-byte control header of two little-endian u64 *monotonic*
byte counters (``write_pos``, ``read_pos``), then ``capacity`` data
bytes used circularly (``capacity`` derives from the segment's true
size, which the kernel may round up to a page).  A message that does
not fit in the free span is the caller's problem — :meth:`RingBuffer.
write` returns ``False`` and the caller falls back to sending the
payload inline over the pipe, so ring capacity bounds *latency*, never
correctness.

Messages themselves are framed with :func:`dumps_message` /
:func:`loads_message`: pickle protocol 5 with out-of-band buffers, so
numpy windows and scores ride as raw bytes instead of pickle opcodes,
and decode into *writable* arrays over a fresh ``bytearray``.
"""

from __future__ import annotations

import pickle
import struct
from multiprocessing import shared_memory
from ..errors import ConfigError

__all__ = ["RingBuffer", "RingError", "dumps_message", "loads_message",
           "DEFAULT_RING_BYTES"]

#: Per-direction ring capacity the sharded fleet asks for by default.
#: Big enough for a round's windows at benchmark batch sizes; anything
#: larger falls back to the pipe (counted, not failed).
DEFAULT_RING_BYTES = 4 * 1024 * 1024

#: write_pos, read_pos — monotonic byte counters (never wrapped; the
#: data offset is ``pos % capacity``), so ``write_pos - read_pos`` is
#: exactly the number of unread bytes even after u64 aeons.
_CTRL = struct.Struct("<QQ")

_MSG_COUNT = struct.Struct("<I")    # segments per message (pickle first)
_MSG_LEN = struct.Struct("<Q")      # length of one segment


class RingError(RuntimeError):
    """The ring or a message frame is in a state that cannot be correct
    under the SPSC protocol (torn counters, short reads, bad frames)."""


class RingBuffer:
    """One single-producer/single-consumer byte ring in shared memory.

    The creating side owns the segment (and must eventually
    :meth:`unlink` it); the attaching side maps the same bytes and is
    unregistered from its process's resource tracker so a worker exit —
    clean or not — never unlinks a live segment.
    """

    def __init__(self, shm: shared_memory.SharedMemory, owner: bool):
        self._shm = shm
        self._owner = owner
        self._closed = False
        self.capacity = shm.size - _CTRL.size
        if self.capacity < 1:
            raise ConfigError(f"segment of {shm.size} bytes leaves no "
                             f"data capacity")

    @classmethod
    def create(cls, capacity: int = DEFAULT_RING_BYTES) -> "RingBuffer":
        if capacity < 1:
            raise ConfigError("ring capacity must be >= 1 byte")
        shm = shared_memory.SharedMemory(create=True,
                                         size=_CTRL.size + capacity)
        shm.buf[:_CTRL.size] = _CTRL.pack(0, 0)
        return cls(shm, owner=True)

    @classmethod
    def attach(cls, name: str) -> "RingBuffer":
        # Spawned workers share the parent's resource-tracker process
        # (the fd rides the spawn handshake), so this attach's REGISTER
        # is an idempotent re-add of the owner's entry — no unregister
        # games needed, and the owner's unlink() retires the entry once.
        shm = shared_memory.SharedMemory(name=name)
        return cls(shm, owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    def _positions(self) -> tuple[int, int]:
        return _CTRL.unpack_from(self._shm.buf, 0)

    def used(self) -> int:
        """Unread bytes currently in the ring."""
        write_pos, read_pos = self._positions()
        return write_pos - read_pos

    def free(self) -> int:
        return self.capacity - self.used()

    def write(self, data) -> bool:
        """Append ``data`` (with wraparound); ``False`` when it does not
        fit in the free span — the caller's cue to fall back to the
        pipe.  Only ever called by the producing side."""
        if self._closed:
            raise RingError("ring is closed")
        count = len(data)
        write_pos, read_pos = self._positions()
        if count > self.capacity - (write_pos - read_pos):
            return False
        view = memoryview(data)
        buf = self._shm.buf
        start = write_pos % self.capacity
        first = min(count, self.capacity - start)
        base = _CTRL.size
        buf[base + start:base + start + first] = view[:first]
        if first < count:
            buf[base:base + count - first] = view[first:]
        # Publish last: the consumer only learns the new write_pos via
        # the pipe doorbell, which happens-after this store.
        struct.pack_into("<Q", buf, 0, write_pos + count)
        return True

    def read(self, count: int) -> bytearray:
        """Consume exactly ``count`` bytes (with wraparound) into a
        fresh writable buffer.  Only ever called by the consuming side;
        the doorbell told it exactly how many bytes one message holds."""
        if self._closed:
            raise RingError("ring is closed")
        write_pos, read_pos = self._positions()
        if count > write_pos - read_pos:
            raise RingError(
                f"ring holds {write_pos - read_pos} unread byte(s); "
                f"asked for {count} — producer and consumer are "
                f"desynchronized")
        out = bytearray(count)
        buf = self._shm.buf
        start = read_pos % self.capacity
        first = min(count, self.capacity - start)
        base = _CTRL.size
        out[:first] = buf[base + start:base + start + first]
        if first < count:
            out[first:] = buf[base:base + count - first]
        struct.pack_into("<Q", buf, 8, read_pos + count)
        return out

    def close(self) -> None:
        """Unmap this side's view (idempotent); the segment itself lives
        until the owner unlinks it."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except (OSError, BufferError):
            pass

    def unlink(self) -> None:
        """Remove the segment from ``/dev/shm`` (owner side, idempotent;
        a no-op if the segment is already gone)."""
        if not self._owner:
            return
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "RingBuffer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------
# Message framing: pickle-5 with out-of-band buffers
# ---------------------------------------------------------------------
def dumps_message(obj) -> bytes:
    """Serialize one message to a self-describing byte blob.

    Out-of-band pickle-5 buffers (numpy array payloads, chiefly) are
    carried as raw segments after the pickle stream — no bytes->opcode
    round-trip for the window data itself.
    """
    buffers: list[pickle.PickleBuffer] = []
    head = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
    segments = [head, *(buffer.raw() for buffer in buffers)]
    parts = [_MSG_COUNT.pack(len(segments))]
    parts.extend(_MSG_LEN.pack(len(segment)) for segment in segments)
    parts.extend(segments)
    return b"".join(parts)


def loads_message(blob) -> object:
    """Rebuild a message from :func:`dumps_message` bytes.

    Pass a ``bytearray`` (what :meth:`RingBuffer.read` returns) and the
    reconstructed arrays view it writably — no extra copy.
    """
    view = memoryview(blob)
    if len(view) < _MSG_COUNT.size:
        raise RingError(f"message blob of {len(view)} byte(s) is shorter "
                        f"than its segment-count header")
    (count,) = _MSG_COUNT.unpack_from(view, 0)
    offset = _MSG_COUNT.size
    if count < 1 or len(view) < offset + count * _MSG_LEN.size:
        raise RingError(f"message blob claims {count} segment(s) but is "
                        f"only {len(view)} byte(s) long")
    lengths = []
    for _ in range(count):
        (length,) = _MSG_LEN.unpack_from(view, offset)
        offset += _MSG_LEN.size
        lengths.append(length)
    if offset + sum(lengths) != len(view):
        raise RingError(
            f"message blob is {len(view)} byte(s); its segment table "
            f"promises {offset + sum(lengths)}")
    segments = []
    for length in lengths:
        segments.append(view[offset:offset + length])
        offset += length
    try:
        return pickle.loads(segments[0], buffers=segments[1:])
    except Exception as exc:
        raise RingError(f"undecodable ring message: "
                        f"{type(exc).__name__}: {exc}") from None
