"""Micro-batching for multi-stream serving.

Many concurrent streams each deliver a small arrival batch per tick; one
forward pass per stream wastes most of its time on per-call fixed costs
(node-matrix assembly, tape construction, op dispatch) rather than on the
windows themselves.  :class:`MicroBatcher` coalesces the pending windows
of all streams that share a scoring model into one batched
``anomaly_scores`` call and slices the results back out per stream.

Because every op in the scoring path is batch-independent per window
(eval-mode BatchNorm, per-window attention, row-stable GEMMs — see
:data:`repro.nn.tensor.MIN_STABLE_GEMM_ROWS`), the coalesced scores are
**bit-identical** to scoring each stream's windows separately; micro-
batching is purely a throughput decision, never an accuracy one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from ..errors import ConfigError, WindowShapeError

__all__ = ["ScoreRequest", "MicroBatcher"]


@dataclass
class ScoreRequest:
    """One stream's pending windows plus the model that must score them."""

    model: object                # anything with ``anomaly_scores(windows)``
    windows: np.ndarray          # (B, T, frame_dim)

    def __post_init__(self) -> None:
        self.windows = np.asarray(self.windows, dtype=np.float64)
        if self.windows.ndim != 3:
            raise WindowShapeError(
                f"expected (B, T, frame_dim) windows, got {self.windows.shape}")


class MicroBatcher:
    """Coalesces score requests across streams into batched forwards.

    Requests are grouped by scoring-model identity (streams served by the
    same model instance can share a forward; adaptive deployments own
    diverging model copies and keep their own group).  Each group is
    scored in one call, optionally chunked to ``max_batch_windows`` to
    bound peak memory.  Results come back in request order.
    """

    def __init__(self, max_batch_windows: int | None = None):
        if max_batch_windows is not None and max_batch_windows < 1:
            raise ConfigError("max_batch_windows must be >= 1")
        self.max_batch_windows = max_batch_windows
        self.batches_run = 0     # forwards actually executed
        self.windows_scored = 0  # total windows pushed through

    def score(self, requests: list[ScoreRequest]) -> list[np.ndarray]:
        """Score all requests, coalescing per model; returns per-request
        score arrays in input order."""
        groups: dict[int, list[int]] = {}
        for index, request in enumerate(requests):
            groups.setdefault(id(request.model), []).append(index)

        results: list[np.ndarray | None] = [None] * len(requests)
        for indices in groups.values():
            model = requests[indices[0]].model
            shapes = {requests[i].windows.shape[1:] for i in indices}
            if len(shapes) > 1:
                raise WindowShapeError(
                    f"cannot coalesce windows of mixed shapes {sorted(shapes)} "
                    "into one batch")
            stacked = np.concatenate([requests[i].windows for i in indices])
            scores = self._score_chunked(model, stacked)
            offset = 0
            for i in indices:
                count = requests[i].windows.shape[0]
                results[i] = scores[offset:offset + count]
                offset += count
            self.windows_scored += stacked.shape[0]
        return results  # type: ignore[return-value]

    def _score_chunked(self, model, windows: np.ndarray) -> np.ndarray:
        cap = self.max_batch_windows
        if cap is None or windows.shape[0] <= cap:
            self.batches_run += 1
            return model.anomaly_scores(windows)
        parts = []
        for start in range(0, windows.shape[0], cap):
            self.batches_run += 1
            parts.append(model.anomaly_scores(windows[start:start + cap]))
        return np.concatenate(parts)
