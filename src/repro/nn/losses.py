"""Loss functions.

MissionGNN (and therefore this paper) trains the decision model with a
classification loss plus two weakly-supervised VAD regularizers inherited
from Sultani et al.: a *sparsity* term (anomalies are rare, so the anomaly
probability over a batch should be sparse) and a temporal *smoothness* term
(scores of consecutive frames should not jump).  The paper sets both balance
coefficients lambda_spa = lambda_smt = 0.001.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = [
    "cross_entropy",
    "binary_cross_entropy",
    "mse_loss",
    "sparsity_loss",
    "smoothness_loss",
    "vad_loss",
]


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between raw logits (B, C) and integer targets (B,)."""
    targets = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError(f"expected (B, C) logits, got {logits.shape}")
    if targets.shape[0] != logits.shape[0]:
        raise ValueError("batch size mismatch between logits and targets")
    log_probs = logits.log_softmax(axis=-1)
    picked = log_probs[np.arange(targets.shape[0]), targets]
    return -picked.mean()


def binary_cross_entropy(probs: Tensor, targets: np.ndarray,
                         eps: float = 1e-9) -> Tensor:
    """Mean BCE between probabilities in (0,1) and binary targets."""
    targets_t = Tensor(np.asarray(targets, dtype=np.float64))
    probs = probs.clip(eps, 1.0 - eps)
    return -(targets_t * probs.log() + (1.0 - targets_t) * (1.0 - probs).log()).mean()


def mse_loss(prediction: Tensor, target: Tensor | np.ndarray) -> Tensor:
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target
    return (diff * diff).mean()


def sparsity_loss(anomaly_probs: Tensor) -> Tensor:
    """L1 sparsity on the per-frame anomaly probability p_A(F_t) over a batch."""
    return anomaly_probs.abs().mean()


def smoothness_loss(anomaly_probs: Tensor) -> Tensor:
    """Squared difference between consecutive anomaly probabilities.

    Assumes the batch is ordered in time (consecutive frames), which holds
    for the sliding-window batches used in continuous adaptation.
    """
    if anomaly_probs.shape[0] < 2:
        return Tensor(0.0)
    diff = anomaly_probs[slice(1, None)] - anomaly_probs[slice(None, -1)]
    return (diff * diff).mean()


def vad_loss(logits: Tensor, targets: np.ndarray,
             lambda_spa: float = 0.001, lambda_smt: float = 0.001) -> Tensor:
    """Full training loss: cross-entropy + sparsity + smoothness.

    ``logits`` are the pre-softmax decision outputs (B, n+1) whose column 0
    is the "normal" class; the anomaly probability is
    ``p_A = 1 - softmax(logits)[:, 0]`` (paper Section III-C).
    """
    probs = logits.softmax(axis=-1)
    anomaly_probs = 1.0 - probs[:, 0]
    loss = cross_entropy(logits, targets)
    if lambda_spa:
        loss = loss + lambda_spa * sparsity_loss(anomaly_probs)
    if lambda_smt:
        loss = loss + lambda_smt * smoothness_loss(anomaly_probs)
    return loss
