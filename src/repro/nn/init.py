"""Parameter initializers.

All initializers take an explicit ``numpy.random.Generator`` so that every
model in the reproduction is fully deterministic given a seed — a requirement
for the paper's edge-deployment story, where the cloud-trained model and the
edge copy must be bit-identical at deployment time.
"""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "kaiming_uniform", "normal", "zeros", "ones"]


def xavier_uniform(rng: np.random.Generator, fan_in: int, fan_out: int,
                   shape: tuple[int, ...] | None = None) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    shape = shape or (fan_in, fan_out)
    return rng.uniform(-limit, limit, size=shape)


def xavier_normal(rng: np.random.Generator, fan_in: int, fan_out: int,
                  shape: tuple[int, ...] | None = None) -> np.ndarray:
    """Glorot/Xavier normal initialization."""
    std = np.sqrt(2.0 / (fan_in + fan_out))
    shape = shape or (fan_in, fan_out)
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(rng: np.random.Generator, fan_in: int,
                    shape: tuple[int, ...]) -> np.ndarray:
    """He/Kaiming uniform initialization (for ReLU-family activations)."""
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def normal(rng: np.random.Generator, shape: tuple[int, ...], std: float = 0.02) -> np.ndarray:
    """Plain normal initialization (transformer convention, std=0.02)."""
    return rng.normal(0.0, std, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape)
