"""Gradient checking for modules built on the autodiff engine.

``check_module_gradients`` compares every parameter gradient (and the
input gradient) of an arbitrary scalar-valued function against central
finite differences.  The elementwise ops are verified individually in the
test suite; this utility closes the remaining gap — *composite* modules
(attention, batch-norm in train mode, the full hierarchical GNN layer)
where a subtle tape bug could hide behind individually-correct ops.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from .tensor import Tensor

__all__ = ["numerical_gradient", "check_gradients", "GradcheckError"]


class GradcheckError(AssertionError):
    """Raised when analytic and numerical gradients disagree."""


def numerical_gradient(fn: Callable[[], float], array: np.ndarray,
                       eps: float = 1e-6,
                       sample: int | None = None,
                       rng: np.random.Generator | None = None) -> np.ndarray:
    """Central-difference gradient of ``fn()`` w.r.t. ``array`` (in place).

    ``fn`` must re-evaluate the computation reading the *current* contents
    of ``array``.  For large parameters, pass ``sample`` to check a random
    subset of coordinates (NaN elsewhere).
    """
    grad = np.full_like(array, np.nan)
    flat = array.reshape(-1)
    gflat = grad.reshape(-1)
    indices = np.arange(flat.size)
    if sample is not None and sample < flat.size:
        if rng is None:
            rng = np.random.default_rng(0)
        indices = rng.choice(flat.size, size=sample, replace=False)
    for i in indices:
        original = flat[i]
        flat[i] = original + eps
        hi = fn()
        flat[i] = original - eps
        lo = fn()
        flat[i] = original
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


def check_gradients(loss_fn: Callable[[], Tensor],
                    tensors: Iterable[tuple[str, Tensor]],
                    atol: float = 1e-4, rtol: float = 1e-3,
                    sample: int | None = 40,
                    seed: int = 0) -> None:
    """Verify analytic gradients of ``loss_fn`` for the named tensors.

    ``loss_fn`` builds the graph from scratch on each call (so finite
    differences see parameter perturbations) and returns a scalar Tensor.
    Raises :class:`GradcheckError` on mismatch.
    """
    tensors = list(tensors)
    rng = np.random.default_rng(seed)

    # Analytic pass.
    for _, tensor in tensors:
        tensor.zero_grad()
    loss = loss_fn()
    loss.backward()
    analytic = {name: (tensor.grad.copy() if tensor.grad is not None
                       else np.zeros_like(tensor.data))
                for name, tensor in tensors}

    # Numerical pass per tensor.
    for name, tensor in tensors:
        numeric = numerical_gradient(
            lambda: float(loss_fn().numpy()), tensor.data,
            sample=sample, rng=rng)
        mask = ~np.isnan(numeric)
        if not mask.any():
            continue
        a = analytic[name][mask]
        n = numeric[mask]
        err = np.abs(a - n)
        tol = atol + rtol * np.abs(n)
        if np.any(err > tol):
            worst = float(err.max())
            raise GradcheckError(
                f"gradient mismatch for {name!r}: max |analytic-numeric| "
                f"= {worst:.3e} (atol={atol}, rtol={rtol})")
