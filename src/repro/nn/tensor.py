"""A small reverse-mode automatic differentiation engine on top of numpy.

This module is the computational substrate for the whole reproduction: the
hierarchical GNN (paper Eq. 1-4), the short-term transformer temporal model,
the decision head (Eq. 5) and — critically — the continuous KG adaptive
learning mechanism, which backpropagates a loss through *frozen* models into
the KG token embeddings only.  A tape-based engine makes "update only the
token embeddings" a one-liner: mark just the token table with
``requires_grad=True``.

Design notes
------------
* ``Tensor`` wraps a ``numpy.ndarray`` (always ``float64`` unless the caller
  passes something else) plus an optional gradient and a backward closure.
* The graph is dynamic: every op records its parents; ``backward()`` runs a
  topological sort and accumulates gradients.
* Broadcasting follows numpy semantics; ``_unbroadcast`` sums gradients back
  down to each parent's shape.
* ``no_grad()`` disables tape recording, used for inference-time scoring in
  the edge deployment loop where no adaptation is happening.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Sequence

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "as_tensor",
           "MIN_STABLE_GEMM_ROWS", "pad_gemm_rows"]

_GRAD_ENABLED = True

# BLAS kernels switch algorithm (and with it the K-accumulation order) for
# very small row counts, so the same logical row can produce last-ulp
# different results depending on how many rows share the GEMM call.  The
# serving layer relies on row-stable matmuls: a window's score must be
# bit-identical whether it is scored alone or coalesced into a micro-batch.
# Empirically the blocked-kernel regime is reached by 16 rows across the
# K values this codebase uses; padding tiny inputs up to that floor keeps
# every call in the same regime at negligible cost.
MIN_STABLE_GEMM_ROWS = 16


def pad_gemm_rows(matrix: np.ndarray) -> tuple[np.ndarray, int]:
    """Zero-pad a 2-D array to at least :data:`MIN_STABLE_GEMM_ROWS` rows.

    Returns the (possibly padded) matrix and the original row count.
    """
    rows = matrix.shape[0]
    if rows >= MIN_STABLE_GEMM_ROWS:
        return matrix, rows
    padded = np.zeros((MIN_STABLE_GEMM_ROWS,) + matrix.shape[1:])
    padded[:rows] = matrix
    return padded, rows


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient tape recording."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether operations are currently being recorded on the tape."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, inverting numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum out prepended broadcast dimensions.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum along axes that were broadcast from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``numpy.ndarray`` of floats.
    requires_grad:
        Whether gradients should be accumulated into ``self.grad`` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name")

    def __init__(self, data, requires_grad: bool = False, name: str | None = None):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Callable[[], None] | None = None
        self._prev: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the tape."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}{tag})"

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"],
              backward: Callable[["Tensor"], None] | None) -> "Tensor":
        """Create an op output, recording the tape edge when grads are on."""
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=False)
        out.requires_grad = requires
        if requires and backward is not None:
            out._prev = tuple(parents)
            out._backward = lambda: backward(out)
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64, copy=True)
        else:
            self.grad = self.grad + grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to ones (scalar outputs are the common case).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited and parent.requires_grad:
                    stack.append((parent, False))
        self._accumulate(np.asarray(grad, dtype=np.float64))
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward()

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(out.grad, other.shape))

        return Tensor._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(-out.grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(out.grad * self.data, other.shape))

        return Tensor._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-out.grad * self.data / (other.data ** 2), other.shape))

        return Tensor._make(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(out.grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(self.data ** exponent, (self,), backward)

    # ------------------------------------------------------------------
    # Matrix multiplication (supports numpy batched semantics)
    # ------------------------------------------------------------------
    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(out: Tensor) -> None:
            grad = out.grad
            a, b = self.data, other.data
            if self.requires_grad:
                if b.ndim == 1:
                    ga = np.expand_dims(grad, -1) * b  # outer product rows
                elif a.ndim == 1:
                    ga = grad @ np.swapaxes(b, -1, -2)
                    ga = _unbroadcast(ga, a.shape)
                else:
                    ga = grad @ np.swapaxes(b, -1, -2)
                    ga = _unbroadcast(ga, a.shape)
                self._accumulate(ga)
            if other.requires_grad:
                if a.ndim == 1:
                    gb = np.expand_dims(a, -1) * grad
                    gb = _unbroadcast(gb, b.shape)
                elif b.ndim == 1:
                    gb = (np.swapaxes(a, -1, -2) @ np.expand_dims(grad, -1)).squeeze(-1)
                    gb = _unbroadcast(gb, b.shape)
                else:
                    gb = np.swapaxes(a, -1, -2) @ grad
                    gb = _unbroadcast(gb, b.shape)
                other._accumulate(gb)

        return Tensor._make(self.data @ other.data, (self, other), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        value = np.exp(self.data)

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(out.grad * value)

        return Tensor._make(value, (self,), backward)

    def log(self) -> "Tensor":
        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(out.grad / self.data)

        return Tensor._make(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        value = np.sqrt(self.data)

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(out.grad * 0.5 / value)

        return Tensor._make(value, (self,), backward)

    def tanh(self) -> "Tensor":
        value = np.tanh(self.data)

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(out.grad * (1.0 - value ** 2))

        return Tensor._make(value, (self,), backward)

    def sigmoid(self) -> "Tensor":
        value = 1.0 / (1.0 + np.exp(-self.data))

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(out.grad * value * (1.0 - value))

        return Tensor._make(value, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(out.grad * mask)

        return Tensor._make(self.data * mask, (self,), backward)

    def elu(self, alpha: float = 1.0) -> "Tensor":
        """Exponential linear unit — the activation in the paper's GNN layer (Eq. 4)."""
        negative = self.data <= 0
        # The transcendental is the expensive part: evaluate expm1 only on
        # the negative entries instead of over the whole array.
        neg_expm1 = np.expm1(self.data[negative])
        value = self.data.copy()
        value[negative] = alpha * neg_expm1

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                local = np.ones_like(self.data)
                local[negative] = alpha * (neg_expm1 + 1.0)
                self._accumulate(out.grad * local)

        return Tensor._make(value, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(out.grad * sign)

        return Tensor._make(np.abs(self.data), (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        mask = (self.data >= low) & (self.data <= high)

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(out.grad * mask)

        return Tensor._make(np.clip(self.data, low, high), (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        def backward(out: Tensor) -> None:
            if not self.requires_grad:
                return
            grad = out.grad
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(grad, self.shape).copy())

        return Tensor._make(self.data.sum(axis=axis, keepdims=keepdims), (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Population variance (ddof=0), differentiable."""
        centered = self - self.mean(axis=axis, keepdims=True)
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        value = self.data.max(axis=axis, keepdims=keepdims)

        def backward(out: Tensor) -> None:
            if not self.requires_grad:
                return
            grad = out.grad
            expanded = value
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
                expanded = np.expand_dims(value, axis)
            mask = self.data == expanded
            counts = mask.sum(axis=axis, keepdims=True)
            self._accumulate(mask * grad / counts)

        return Tensor._make(value, (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(out.grad.reshape(self.shape))

        return Tensor._make(self.data.reshape(shape), (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = tuple(np.argsort(axes))

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(out.grad.transpose(inverse))

        return Tensor._make(self.data.transpose(axes), (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(tuple(axes))

    def __getitem__(self, index) -> "Tensor":
        """Differentiable indexing; integer-array indexing backs an embedding gather."""
        def backward(out: Tensor) -> None:
            if self.requires_grad:
                grad = np.zeros_like(self.data)
                np.add.at(grad, index, out.grad)
                self._accumulate(grad)

        return Tensor._make(self.data[index], (self,), backward)

    @staticmethod
    def segment_sum(values: "Tensor", segment_ids: np.ndarray,
                    num_segments: int) -> "Tensor":
        """Scatter-add rows of ``values`` into ``num_segments`` bins.

        ``values`` has shape ``(..., E, D)``; ``segment_ids`` maps each of
        the ``E`` rows to a bin index; the result has shape
        ``(..., num_segments, D)`` where bin ``s`` holds the sum of all rows
        with ``segment_ids == s`` (empty bins are zero).  This is the
        adjoint of an integer gather along the same axis, which is exactly
        what the backward pass is: ``grad_values = grad_out[..., ids, :]``.

        Backs the GNN's hierarchical message aggregation (Eq. 3) without
        materializing a dense (num_nodes, num_edges) matrix per level.
        """
        values = as_tensor(values)
        ids = np.asarray(segment_ids, dtype=np.int64)
        if ids.ndim != 1:
            raise ValueError(f"segment_ids must be 1-D, got shape {ids.shape}")
        if values.ndim < 2 or values.shape[-2] != ids.size:
            raise ValueError(
                f"values shape {values.shape} does not provide {ids.size} "
                "rows along the second-to-last axis")
        if ids.size and (ids.min() < 0 or ids.max() >= num_segments):
            raise IndexError("segment id out of range")
        # Move the segment axis first so np.add.at's fancy index is on axis 0.
        moved = np.moveaxis(values.data, -2, 0)
        summed = np.zeros((num_segments,) + moved.shape[1:])
        np.add.at(summed, ids, moved)

        def backward(out: Tensor) -> None:
            if values.requires_grad:
                gathered = np.moveaxis(out.grad, -2, 0)[ids]
                values._accumulate(np.moveaxis(gathered, 0, -2))

        return Tensor._make(np.moveaxis(summed, 0, -2), (values,), backward)

    @staticmethod
    def concat(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [as_tensor(t) for t in tensors]
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(out: Tensor) -> None:
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if tensor.requires_grad:
                    slicer = [slice(None)] * out.grad.ndim
                    slicer[axis] = slice(start, stop)
                    tensor._accumulate(out.grad[tuple(slicer)])

        data = np.concatenate([t.data for t in tensors], axis=axis)
        return Tensor._make(data, tensors, backward)

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [as_tensor(t) for t in tensors]

        def backward(out: Tensor) -> None:
            grads = np.moveaxis(out.grad, axis, 0)
            for tensor, grad in zip(tensors, grads):
                if tensor.requires_grad:
                    tensor._accumulate(grad)

        data = np.stack([t.data for t in tensors], axis=axis)
        return Tensor._make(data, tensors, backward)

    # ------------------------------------------------------------------
    # Composite ops
    # ------------------------------------------------------------------
    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self - self.max(axis=axis, keepdims=True).detach()
        exp = shifted.exp()
        return exp / exp.sum(axis=axis, keepdims=True)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self - self.max(axis=axis, keepdims=True).detach()
        return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()

    def norm(self, axis=None, keepdims: bool = False) -> "Tensor":
        """L2 norm, differentiable (adds a small epsilon for stability at 0)."""
        return ((self * self).sum(axis=axis, keepdims=keepdims) + 1e-12).sqrt()


def as_tensor(value) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no-op if it already is one)."""
    return value if isinstance(value, Tensor) else Tensor(value)
