"""Neural-network substrate: autodiff tensors, layers, attention, optimizers, losses.

This package replaces PyTorch for the reproduction.  Everything is numpy
with a small reverse-mode tape (:mod:`repro.nn.tensor`), which is all the
paper needs: a lightweight GNN, a small transformer, and gradient flow into
KG token embeddings through otherwise-frozen models.
"""

from .tensor import Tensor, as_tensor, is_grad_enabled, no_grad
from .layers import (
    BatchNorm,
    Dense,
    Dropout,
    ELU,
    Embedding,
    LayerNorm,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Tanh,
)
from .attention import (
    MultiHeadAttention,
    TransformerEncoder,
    TransformerEncoderLayer,
    sinusoidal_positions,
)
from .optim import SGD, Adam, AdamW, ExponentialDecay, Optimizer, clip_grad_norm
from .losses import (
    binary_cross_entropy,
    cross_entropy,
    mse_loss,
    smoothness_loss,
    sparsity_loss,
    vad_loss,
)
from . import gradcheck, init

__all__ = [
    "Tensor", "as_tensor", "no_grad", "is_grad_enabled",
    "Module", "Parameter", "Dense", "BatchNorm", "LayerNorm", "Embedding",
    "Dropout", "Sequential", "ELU", "ReLU", "Tanh",
    "MultiHeadAttention", "TransformerEncoder", "TransformerEncoderLayer",
    "sinusoidal_positions",
    "Optimizer", "SGD", "Adam", "AdamW", "ExponentialDecay", "clip_grad_norm",
    "cross_entropy", "binary_cross_entropy", "mse_loss", "sparsity_loss",
    "smoothness_loss", "vad_loss",
    "init",
    "gradcheck",
]
