"""Multi-head self-attention and transformer encoder blocks.

The paper's short-term temporal model ``T : R^{T x D} -> R^D`` is a
transformer that consumes the reasoning embeddings of the previous ``T``
consecutive frames and emits the output embedding at the final position
(Section III-C).  The paper specifies an inner dimensionality of 128 with
8 attention heads.
"""

from __future__ import annotations

import numpy as np

from .layers import Dense, Dropout, LayerNorm, Module
from .tensor import Tensor

__all__ = ["MultiHeadAttention", "TransformerEncoderLayer", "TransformerEncoder",
           "sinusoidal_positions"]


def sinusoidal_positions(length: int, dim: int) -> np.ndarray:
    """Standard sinusoidal positional encoding table of shape (length, dim)."""
    positions = np.arange(length)[:, None]
    div = np.exp(np.arange(0, dim, 2) * (-np.log(10000.0) / dim))
    table = np.zeros((length, dim))
    table[:, 0::2] = np.sin(positions * div)
    table[:, 1::2] = np.cos(positions * div[: table[:, 1::2].shape[1]])
    return table


class MultiHeadAttention(Module):
    """Scaled dot-product multi-head self-attention.

    Operates on ``(B, T, D)`` tensors.  Supports an optional causal mask so
    the temporal model's final-position output only attends to the past —
    matching "focusing on short-term relationships" in the paper.
    """

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator,
                 causal: bool = False):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.causal = causal
        self.w_q = Dense(dim, dim, rng)
        self.w_k = Dense(dim, dim, rng)
        self.w_v = Dense(dim, dim, rng)
        self.w_o = Dense(dim, dim, rng)

    def _split_heads(self, x: Tensor, batch: int, length: int) -> Tensor:
        # (B, T, D) -> (B, H, T, Dh)
        return x.reshape(batch, length, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, x: Tensor, last_only: bool = False) -> Tensor:
        """Self-attention over ``(B, T, D)``.

        With ``last_only`` the query set is restricted to the final
        position, returning ``(B, 1, D)``.  For a *causal* model whose
        consumer only reads the last time step (the paper's short-term
        temporal model) this computes exactly that step's attention output
        while skipping the other ``T - 1`` query rows, and needs no mask:
        the final position attends to the whole window.
        """
        if x.ndim != 3:
            raise ValueError(f"expected (B, T, D), got shape {x.shape}")
        batch, length, _ = x.shape
        query_in = x[:, length - 1:, :] if last_only else x
        q = self._split_heads(self.w_q(query_in), batch, 1 if last_only else length)
        k = self._split_heads(self.w_k(x), batch, length)
        v = self._split_heads(self.w_v(x), batch, length)

        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(self.head_dim))
        if self.causal and not last_only:
            mask = np.triu(np.full((length, length), -1e9), k=1)
            scores = scores + Tensor(mask)
        attn = scores.softmax(axis=-1)
        context = attn @ v  # (B, H, Tq, Dh)
        merged = context.transpose(0, 2, 1, 3).reshape(
            batch, 1 if last_only else length, self.dim)
        return self.w_o(merged)


class TransformerEncoderLayer(Module):
    """Pre-norm transformer block: MHA + position-wise feed-forward."""

    def __init__(self, dim: int, num_heads: int, ff_dim: int,
                 rng: np.random.Generator, dropout: float = 0.0,
                 causal: bool = False):
        super().__init__()
        self.attn = MultiHeadAttention(dim, num_heads, rng, causal=causal)
        self.norm1 = LayerNorm(dim)
        self.norm2 = LayerNorm(dim)
        self.ff1 = Dense(dim, ff_dim, rng)
        self.ff2 = Dense(ff_dim, dim, rng)
        self.drop = Dropout(dropout, rng) if dropout > 0 else None

    def forward(self, x: Tensor, last_only: bool = False) -> Tensor:
        """One encoder block; ``last_only`` restricts the output (and all
        position-wise work — feed-forward, second norm, residuals) to the
        final time step, returning ``(B, 1, D)``.  Only valid as the *last*
        block of a stack, since downstream blocks would need the full
        sequence."""
        attn_out = self.attn(self.norm1(x), last_only=last_only)
        if self.drop is not None:
            attn_out = self.drop(attn_out)
        x = (x[:, x.shape[1] - 1:, :] if last_only else x) + attn_out
        ff_out = self.ff2(self.ff1(self.norm2(x)).relu())
        if self.drop is not None:
            ff_out = self.drop(ff_out)
        return x + ff_out


class TransformerEncoder(Module):
    """Stack of encoder layers with learned input projection and positions.

    ``forward`` maps ``(B, T, D_in)`` to ``(B, T, D_in)`` and
    :meth:`last_output` returns only the final time step, matching the
    paper's ``f'_t = T(F_t)`` which "only takes the last output embedding".
    """

    def __init__(self, input_dim: int, model_dim: int, num_heads: int,
                 num_layers: int, rng: np.random.Generator,
                 max_length: int = 64, ff_multiplier: int = 4,
                 dropout: float = 0.0, causal: bool = True):
        super().__init__()
        self.input_dim = input_dim
        self.model_dim = model_dim
        self.in_proj = Dense(input_dim, model_dim, rng)
        self.out_proj = Dense(model_dim, input_dim, rng)
        self.layers = [
            TransformerEncoderLayer(model_dim, num_heads, ff_multiplier * model_dim,
                                    rng, dropout=dropout, causal=causal)
            for _ in range(num_layers)
        ]
        self.final_norm = LayerNorm(model_dim)
        self.positions = sinusoidal_positions(max_length, model_dim)
        self.max_length = max_length

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 3:
            raise ValueError(f"expected (B, T, D), got shape {x.shape}")
        length = x.shape[1]
        if length > self.max_length:
            raise ValueError(f"sequence length {length} exceeds max {self.max_length}")
        h = self.in_proj(x) + Tensor(self.positions[:length])
        for layer in self.layers:
            h = layer(h)
        return self.out_proj(self.final_norm(h))

    def last_output(self, x: Tensor) -> Tensor:
        """Return the output embedding at the final position, shape (B, D_in).

        For a causal stack only the final position is needed downstream of
        the last block, so that block (plus the final norm and output
        projection) runs on a single time step — the bulk of the
        position-wise compute in the window-scoring hot path.
        """
        if x.ndim != 3:
            raise ValueError(f"expected (B, T, D), got shape {x.shape}")
        length = x.shape[1]
        if length > self.max_length:
            raise ValueError(f"sequence length {length} exceeds max {self.max_length}")
        h = self.in_proj(x) + Tensor(self.positions[:length])
        for layer in self.layers[:-1]:
            h = layer(h)
        h = self.layers[-1](h, last_only=True)
        return self.out_proj(self.final_norm(h))[:, -1, :]
