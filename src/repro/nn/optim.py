"""Optimizers and learning-rate schedules.

The paper trains with AdamW (lr=1e-5, weight decay=1.0, beta1=0.9,
beta2=0.999, eps=1e-8) and mentions a "decaying threshold" alpha_d = 0.9999
which we expose as an exponential-decay schedule.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam", "AdamW", "ExponentialDecay", "clip_grad_norm"]


def clip_grad_norm(parameters: Iterable[Tensor], max_norm: float) -> float:
    """Clip gradients in place to a global L2 norm; returns the pre-clip norm."""
    params = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad = p.grad * scale
    return total


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, parameters: Iterable[Tensor], lr: float):
        self.parameters: Sequence[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.step_count = 0

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Tensor], lr: float, momentum: float = 0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self.step_count += 1
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            if self.momentum > 0:
                v *= self.momentum
                v += p.grad
                p.data = p.data - self.lr * v
            else:
                p.data = p.data - self.lr * p.grad


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba)."""

    def __init__(self, parameters: Iterable[Tensor], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self.step_count += 1
        t = self.step_count
        bc1 = 1.0 - self.beta1 ** t
        bc2 = 1.0 - self.beta2 ** t
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            m *= self.beta1
            m += (1 - self.beta1) * p.grad
            v *= self.beta2
            v += (1 - self.beta2) * p.grad ** 2
            update = (m / bc1) / (np.sqrt(v / bc2) + self.eps)
            p.data = p.data - self.lr * update


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter) — the paper's
    optimizer (lr=1e-5, weight_decay=1.0, betas=(0.9, 0.999), eps=1e-8)."""

    def __init__(self, parameters: Iterable[Tensor], lr: float = 1e-5,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 1.0):
        super().__init__(parameters, lr=lr, betas=betas, eps=eps)
        self.weight_decay = weight_decay

    def step(self) -> None:
        # Decoupled decay applied before the Adam update, as in the paper.
        if self.weight_decay > 0:
            for p in self.parameters:
                if p.grad is not None:
                    p.data = p.data * (1.0 - self.lr * self.weight_decay)
        super().step()


class ExponentialDecay:
    """Exponential decay schedule ``value_t = value_0 * alpha^t``.

    Models the paper's decaying threshold ``alpha_d = 0.9999``.
    """

    def __init__(self, initial: float, alpha: float = 0.9999):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.initial = initial
        self.alpha = alpha
        self.steps = 0

    @property
    def value(self) -> float:
        return self.initial * self.alpha ** self.steps

    def step(self) -> float:
        self.steps += 1
        return self.value
