"""Neural-network building blocks: ``Module`` base class and standard layers.

These back both the hierarchical GNN (paper Eq. 1-4) and the short-term
transformer temporal model.  ``Module`` provides parameter traversal,
train/eval mode switching, and — essential for this paper — *freezing*:
the continuous KG adaptive learning phase freezes every model weight and
updates only the KG token embeddings (Section III-D of the paper).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from . import init
from .tensor import MIN_STABLE_GEMM_ROWS, Tensor

__all__ = [
    "Module",
    "Parameter",
    "Dense",
    "BatchNorm",
    "LayerNorm",
    "Embedding",
    "Dropout",
    "Sequential",
    "ELU",
    "ReLU",
    "Tanh",
]


class Parameter(Tensor):
    """A tensor registered as a trainable model parameter."""

    def __init__(self, data, name: str | None = None):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class with parameter traversal, mode switching and freezing."""

    def __init__(self) -> None:
        self.training = True
        self._buffer_names: list[str] = []

    # -- traversal ------------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        """Yield all :class:`Parameter` objects reachable from this module."""
        seen: set[int] = set()
        for _, param in self.named_parameters():
            if id(param) not in seen:
                seen.add(id(param))
                yield param

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for key, value in vars(self).items():
            name = f"{prefix}{key}" if not prefix else f"{prefix}.{key}"
            if isinstance(value, Parameter):
                yield name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(name)
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(f"{name}.{i}")
                    elif isinstance(item, Parameter):
                        yield f"{name}.{i}", item

    # -- buffers (non-trainable persistent state, e.g. BN running stats) --
    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register ``value`` as persistent non-trainable state.

        Buffers are plain attributes (reassignment works as usual) but are
        included in :meth:`state_dict`, so deployment checkpoints carry
        them without side channels.
        """
        if not hasattr(self, "_buffer_names"):
            self._buffer_names = []
        if name not in self._buffer_names:
            self._buffer_names.append(name)
        setattr(self, name, value)

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for key in getattr(self, "_buffer_names", ()):
            name = f"{prefix}{key}" if not prefix else f"{prefix}.{key}"
            yield name, getattr(self, key)
        for key, value in vars(self).items():
            name = f"{prefix}{key}" if not prefix else f"{prefix}.{key}"
            if isinstance(value, Module):
                yield from value.named_buffers(name)
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_buffers(f"{name}.{i}")

    def buffers(self) -> Iterator[np.ndarray]:
        for _, buffer in self.named_buffers():
            yield buffer

    def _set_buffer_by_path(self, path: str, value: np.ndarray) -> None:
        parts = path.split(".")
        target: object = self
        for part in parts[:-1]:
            if isinstance(target, (list, tuple)):
                target = target[int(part)]
            else:
                target = getattr(target, part)
        current = getattr(target, parts[-1])
        if np.shape(current) != np.shape(value):
            raise ValueError(f"shape mismatch for buffer {path}: "
                             f"{np.shape(current)} vs {np.shape(value)}")
        setattr(target, parts[-1], value.copy())

    def modules(self) -> Iterator["Module"]:
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    # -- mode -----------------------------------------------------------
    def train(self) -> "Module":
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        for module in self.modules():
            module.training = False
        return self

    # -- freezing (paper: "Froze Model" in Fig. 2C) ----------------------
    def freeze(self) -> "Module":
        """Stop gradient accumulation into every parameter of this module."""
        for param in self.parameters():
            param.requires_grad = False
        return self

    def unfreeze(self) -> "Module":
        for param in self.parameters():
            param.requires_grad = True
        return self

    @property
    def frozen(self) -> bool:
        params = list(self.parameters())
        return bool(params) and not any(p.requires_grad for p in params)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # -- state dict (deployment: cloud-trained weights shipped to edge) --
    def state_dict(self) -> dict[str, np.ndarray]:
        """Parameters plus registered buffers (e.g. BN running statistics)."""
        state = {name: param.data.copy() for name, param in self.named_parameters()}
        state.update({name: np.asarray(buffer).copy()
                      for name, buffer in self.named_buffers()})
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        buffer_names = {name for name, _ in self.named_buffers()}
        missing = set(params) - set(state)
        unexpected = set(state) - set(params) - buffer_names
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, "
                           f"unexpected={sorted(unexpected)}")
        for name, param in params.items():
            if param.data.shape != state[name].shape:
                raise ValueError(f"shape mismatch for {name}: "
                                 f"{param.data.shape} vs {state[name].shape}")
            param.data = state[name].copy()
        # Buffers absent from ``state`` (parameter-only dicts from older
        # checkpoints) keep their current values.
        for name in buffer_names:
            if name in state:
                self._set_buffer_by_path(name, np.asarray(state[name]))

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


class Dense(Module):
    """Affine layer ``x @ W + b`` — the paper's Eq. 1 dense sub-layer."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform(rng, in_features, out_features))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim == 1:
            out = x @ self.weight
            if self.bias is not None:
                out = out + self.bias
            return out
        # Flatten the leading axes into one so the product runs as a single
        # 2-D GEMM instead of numpy's per-batch matmul loop, and pad tiny
        # row counts up to the row-stable floor so a row's result does not
        # depend on how many rows were batched with it (micro-batch /
        # sequential score parity).
        lead = x.shape[:-1]
        flat = x.reshape(-1, self.in_features) if x.ndim > 2 else x
        rows = flat.shape[0]
        if rows < MIN_STABLE_GEMM_ROWS:
            pad = Tensor(np.zeros((MIN_STABLE_GEMM_ROWS - rows,
                                   self.in_features)))
            out = (Tensor.concat([flat, pad]) @ self.weight)[:rows]
        else:
            out = flat @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out.reshape(lead + (self.out_features,))


class BatchNorm(Module):
    """Batch normalization over the leading axes (feature axis last).

    The paper's GNN layer (Eq. 4) applies BatchNorm over all node embeddings
    before the ELU activation.  Running statistics make edge inference
    deterministic after deployment.
    """

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(init.ones((num_features,)))
        self.beta = Parameter(init.zeros((num_features,)))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.num_features:
            raise ValueError(f"expected feature dim {self.num_features}, got {x.shape[-1]}")
        axes = tuple(range(x.ndim - 1))
        if self.training:
            mean = x.mean(axis=axes, keepdims=True)
            var = x.var(axis=axes, keepdims=True)
            count = max(int(np.prod([x.shape[a] for a in axes])), 1)
            unbiased = var.data * count / max(count - 1, 1)
            self.running_mean = ((1 - self.momentum) * self.running_mean
                                 + self.momentum * mean.data.reshape(-1))
            self.running_var = ((1 - self.momentum) * self.running_var
                                + self.momentum * unbiased.reshape(-1))
        else:
            # Inference: fold the frozen running statistics and the affine
            # parameters into one scale-and-shift.  The fold itself runs on
            # (num_features,) vectors, so only two ops touch the full-size
            # input instead of five; gamma/beta stay on the tape, and
            # continuous KG adaptation still backpropagates through here
            # into the token embeddings.
            inv_std = 1.0 / np.sqrt(self.running_var + self.eps)
            scale = self.gamma * Tensor(inv_std)
            shift = self.beta - Tensor(self.running_mean) * scale
            return x * scale + shift
        normed = (x - mean) / (var + self.eps).sqrt()
        return normed * self.gamma + self.beta


class LayerNorm(Module):
    """Layer normalization over the last axis (transformer sub-layer norm)."""

    def __init__(self, num_features: int, eps: float = 1e-5):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.gamma = Parameter(init.ones((num_features,)))
        self.beta = Parameter(init.zeros((num_features,)))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        normed = (x - mean) / (var + self.eps).sqrt()
        return normed * self.gamma + self.beta


class Embedding(Module):
    """Lookup table mapping integer indices to vectors.

    This is the substrate of the KG token-embedding table — the *only*
    trainable state during continuous KG adaptive learning.
    """

    def __init__(self, num_embeddings: int, dim: int, rng: np.random.Generator,
                 std: float = 0.02):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(init.normal(rng, (num_embeddings, dim), std=std))

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise IndexError("embedding index out of range")
        return self.weight[indices]


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float, rng: np.random.Generator):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self.rng = rng

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        mask = (self.rng.random(x.shape) >= self.p) / (1.0 - self.p)
        return x * Tensor(mask)


class ELU(Module):
    def __init__(self, alpha: float = 1.0):
        super().__init__()
        self.alpha = alpha

    def forward(self, x: Tensor) -> Tensor:
        return x.elu(self.alpha)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.items = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for module in self.items:
            x = module(x)
        return x

    def __len__(self) -> int:
        return len(self.items)

    def __getitem__(self, index: int) -> Module:
        return self.items[index]
