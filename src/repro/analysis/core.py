"""The analyzer core: source model, rule protocol, suppression handling.

:class:`Analyzer` walks a set of paths, parses every ``*.py`` file once
into a :class:`SourceFile` (AST + per-line comment map), runs each
:class:`Rule` over each file, then gives every rule a ``finalize()``
pass for cross-file invariants (the wire-consts rule checks constants
*between* modules).  The output is a sorted, suppression-filtered list
of :class:`Finding` records.

Inline control comments
-----------------------
``# repro: allow[rule-id]``
    Suppress the named rule(s): trailing a statement it covers that
    line; on a line of its own it covers the line below (comma-separate
    several ids; append a justification after the bracket — required by
    review convention, not by the parser).
``# repro: guarded-by[_lock]``
    On an attribute assignment (``self.x = ... # repro: guarded-by[_lock]``):
    registers ``x`` as guarded — every later access must sit inside
    ``with self._lock:`` (see the lock-guard rule).
``# repro: lock-held``
    On a ``def`` line: the method's contract is that its caller already
    holds every lock its class declares, so guarded accesses inside it
    are exempt (the machine-checked replacement for "Caller holds
    self._lock." prose comments).

Comments are extracted with :mod:`tokenize`, so control markers inside
string literals (e.g. rule-fixture snippets in tests) are never
misread as live annotations.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

__all__ = ["Finding", "SourceFile", "Rule", "Analyzer", "PARSE_ERROR_ID",
           "module_name"]

#: Pseudo-rule id attached to files that do not parse; never suppressible.
PARSE_ERROR_ID = "parse-error"

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_,\- ]+)\]")
_LOCK_HELD_RE = re.compile(r"#\s*repro:\s*lock-held\b")
_GUARDED_BY_RE = re.compile(r"#\s*repro:\s*guarded-by\[([A-Za-z_]\w*)\]")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to ``path:line:col``."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def to_dict(self) -> dict:
        return {"path": self.path, "line": self.line, "col": self.col,
                "rule": self.rule, "message": self.message}


def module_name(path: Path) -> str:
    """Dotted module name for ``path``, found by walking up through
    ``__init__.py`` package directories (``src/repro/wal/log.py`` ->
    ``repro.wal.log``; a loose script maps to its stem)."""
    path = Path(path).resolve()
    parts = [] if path.stem == "__init__" else [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts)


class SourceFile:
    """One parsed source file plus its control-comment maps.

    ``module`` may be injected (rule unit tests exercise project-scoped
    rules on synthetic snippets by claiming a module name); by default
    it is derived from the path's package structure.
    """

    def __init__(self, path: str | Path, text: str,
                 module: str | None = None):
        self.path = Path(path)
        self.text = text
        self.module = module_name(self.path) if module is None else module
        self.is_package = self.path.stem == "__init__"
        self.syntax_error: SyntaxError | None = None
        try:
            self.tree: ast.Module = ast.parse(text)
        except SyntaxError as exc:
            self.syntax_error = exc
            self.tree = ast.Module(body=[], type_ignores=[])
        self.comments: dict[int, str] = self._extract_comments(text)
        self.suppressions: dict[int, frozenset[str]] = \
            self._extract_suppressions()

    @classmethod
    def load(cls, path: str | Path) -> "SourceFile":
        return cls(path, Path(path).read_text(encoding="utf-8"))

    @staticmethod
    def _extract_comments(text: str) -> dict[int, str]:
        comments: dict[int, str] = {}
        try:
            tokens = tokenize.generate_tokens(io.StringIO(text).readline)
            for token in tokens:
                if token.type == tokenize.COMMENT:
                    comments[token.start[0]] = token.string
        except (tokenize.TokenError, IndentationError, SyntaxError):
            pass  # the AST parse reports the real problem
        return comments

    def _extract_suppressions(self) -> dict[int, frozenset[str]]:
        table: dict[int, set[str]] = {}
        source_lines = self.text.splitlines()
        for line, comment in self.comments.items():
            match = _ALLOW_RE.search(comment)
            if not match:
                continue
            ids = {part.strip() for part in match.group(1).split(",")
                   if part.strip()}
            # A trailing comment suppresses its own line; a comment-only
            # line suppresses the statement on the line below it.
            text = source_lines[line - 1] if line <= len(source_lines) else ""
            standalone = text.lstrip().startswith("#")
            covered = line + 1 if standalone else line
            table.setdefault(covered, set()).update(ids)
        return {line: frozenset(ids) for line, ids in table.items()}

    # ------------------------------------------------------------------
    # Control-comment queries used by rules
    # ------------------------------------------------------------------
    def is_suppressed(self, finding: Finding) -> bool:
        if finding.rule == PARSE_ERROR_ID:
            return False
        return finding.rule in self.suppressions.get(finding.line, ())

    def lock_held(self, node: ast.AST) -> bool:
        """Whether a ``def`` node carries the lock-held annotation (on
        the ``def`` line or the line directly above it)."""
        for line in (node.lineno, node.lineno - 1):
            comment = self.comments.get(line)
            if comment and _LOCK_HELD_RE.search(comment):
                return True
        return False

    def guarded_by(self, line: int) -> str | None:
        """The lock name a ``guarded-by[...]`` comment on ``line``
        declares, or ``None``."""
        comment = self.comments.get(line)
        if comment:
            match = _GUARDED_BY_RE.search(comment)
            if match:
                return match.group(1)
        return None

    def finding(self, node: ast.AST, rule: str, message: str) -> Finding:
        return Finding(path=str(self.path), rule=rule, message=message,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0))


class Rule:
    """One invariant checker.

    Subclasses set ``id``/``summary`` and implement :meth:`check`; rules
    that correlate facts across files also implement :meth:`finalize`,
    which runs once after every file was checked.  Rule instances are
    single-run (the analyzer constructs fresh ones per invocation), so
    accumulating state on ``self`` during :meth:`check` is safe.
    """

    id: str = ""
    summary: str = ""

    def check(self, source: SourceFile) -> Iterable[Finding]:
        return ()

    def finalize(self) -> Iterable[Finding]:
        return ()


def _iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
        if path.is_file():
            files.append(path)
        else:
            files.extend(candidate for candidate in path.rglob("*.py")
                         if not any(part.startswith(".")
                                    for part in candidate.parts))
    unique = {path.resolve(): path for path in files}
    return [unique[key] for key in sorted(unique)]


class Analyzer:
    """Run a set of rules over a set of paths.

    ``rules`` accepts rule instances or classes (classes are
    instantiated fresh, which is what keeps stateful rules single-run);
    by default every registered rule runs (see
    :data:`repro.analysis.rules.RULES`).
    """

    def __init__(self, rules: Iterable[Rule | type[Rule]] | None = None):
        if rules is None:
            from .rules import default_rules
            self.rules: list[Rule] = default_rules()
        else:
            self.rules = [rule() if isinstance(rule, type) else rule
                          for rule in rules]

    def run(self, paths: Iterable[str | Path]) -> list[Finding]:
        findings: list[Finding] = []
        sources: dict[str, SourceFile] = {}
        for path in _iter_python_files(paths):
            source = SourceFile.load(path)
            sources[str(source.path)] = source
            if source.syntax_error is not None:
                exc = source.syntax_error
                findings.append(Finding(
                    path=str(source.path), line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1, rule=PARSE_ERROR_ID,
                    message=f"file does not parse: {exc.msg}"))
                continue
            for rule in self.rules:
                findings.extend(rule.check(source))
        for rule in self.rules:
            findings.extend(rule.finalize())
        kept = []
        for finding in findings:
            source = sources.get(finding.path)
            if source is not None and source.is_suppressed(finding):
                continue
            kept.append(finding)
        return sorted(kept)
