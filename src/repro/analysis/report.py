"""Finding reporters: line-oriented text and machine-readable JSON."""

from __future__ import annotations

import json
from collections import Counter
from typing import Iterable

from .core import Finding

__all__ = ["render_text", "render_json"]


def render_text(findings: Iterable[Finding]) -> str:
    lines = [f"{f.path}:{f.line}:{f.col}: {f.rule}: {f.message}"
             for f in findings]
    return "\n".join(lines)


def render_json(findings: Iterable[Finding]) -> str:
    findings = list(findings)
    counts = Counter(f.rule for f in findings)
    payload = {
        "version": 1,
        "findings": [f.to_dict() for f in findings],
        "counts": dict(sorted(counts.items())),
        "total": len(findings),
    }
    return json.dumps(payload, indent=2, sort_keys=False)
