"""The rule registry: every shipped invariant rule, by id."""

from __future__ import annotations

from ..core import Rule
from .async_blocking import AsyncBlockingRule
from .layer_dag import LAYER_DEPS, LayerDagRule
from .lock_guard import LockGuardRule
from .typed_raise import TypedRaiseRule
from .wire_consts import WireConstsRule

__all__ = ["RULES", "default_rules", "LAYER_DEPS",
           "AsyncBlockingRule", "LayerDagRule", "LockGuardRule",
           "TypedRaiseRule", "WireConstsRule"]

#: rule id -> rule class; ``repro lint --rule <id>`` selects from here.
RULES: dict[str, type[Rule]] = {
    rule.id: rule
    for rule in (LayerDagRule, LockGuardRule, AsyncBlockingRule,
                 TypedRaiseRule, WireConstsRule)
}


def default_rules() -> list[Rule]:
    """Fresh instances of every registered rule (rules are stateful
    within one run, so instances are never reused across runs)."""
    return [rule_cls() for rule_cls in RULES.values()]
