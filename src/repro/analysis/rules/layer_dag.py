"""layer-dag: the one declared import DAG between ``repro`` packages.

Each top-level package lists the packages it may import from
(:data:`LAYER_DEPS`).  The rule resolves every ``import``/``from``
statement in a ``repro.*`` module — absolute and relative alike — to the
target's top-level package and flags edges that are not declared.

The declaration replaces both the ruff TID251 banned-import config and
the bespoke AST walk ``tests/test_layering.py`` used to carry; the test
is now a thin wrapper over this rule.  Layer order, foundations first::

    utils / errors / metrics / concepts
      -> nn / llm / embedding / data / kg / gnn / baselines
      -> adaptation / edge / eval -> api
      -> runtime -> serving -> wal -> gateway -> cli

``runtime`` sits *below* ``serving`` (serving backends drive the
engine); the single engine->batcher lazy import that breaks this order
is suppressed inline where it happens, not widened here.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..core import Finding, Rule, SourceFile

__all__ = ["LayerDagRule", "LAYER_DEPS", "resolve_import_targets"]

#: package -> packages it may import from (top-level names under
#: ``repro``; ``""`` is the repro package root: ``errors``, ``metrics``,
#: ``cli`` and friends live there as modules and are named directly).
LAYER_DEPS: dict[str, frozenset[str]] = {
    # foundations — import nothing project-internal
    "utils": frozenset(),
    "errors": frozenset(),
    "metrics": frozenset(),
    # observability: trace contexts/recorder — sits next to metrics,
    # above nothing else, so every serving layer may depend on it
    "obs": frozenset({"metrics", "utils"}),
    "concepts": frozenset({"utils"}),
    # domain layers
    "nn": frozenset(),
    "llm": frozenset({"concepts", "utils"}),
    "embedding": frozenset({"concepts", "nn", "utils"}),
    "data": frozenset({"concepts", "embedding", "utils"}),
    "kg": frozenset({"llm", "embedding", "utils"}),
    "gnn": frozenset({"embedding", "kg", "nn", "utils"}),
    "baselines": frozenset({"embedding", "nn", "utils"}),
    "adaptation": frozenset({"embedding", "gnn", "kg", "nn", "utils"}),
    "edge": frozenset({"adaptation", "gnn", "kg"}),
    "eval": frozenset({"adaptation", "concepts", "data", "embedding",
                       "gnn", "kg", "nn", "utils"}),
    "api": frozenset({"adaptation", "concepts", "data", "eval", "embedding",
                      "gnn", "kg", "llm", "utils"}),
    # serving stack, bottom-up
    "runtime": frozenset({"adaptation", "errors", "metrics", "obs",
                          "utils"}),
    "serving": frozenset({"api", "data", "embedding", "errors", "gnn",
                          "metrics", "obs", "runtime", "utils"}),
    "wal": frozenset({"api", "data", "errors", "gnn", "metrics", "obs",
                      "serving", "utils"}),
    "gateway": frozenset({"errors", "metrics", "obs", "runtime", "serving",
                          "utils", "wal"}),
    # tools on top
    "analysis": frozenset(),
    "cli": frozenset({"analysis", "api", "concepts", "data", "edge",
                      "errors", "eval", "gateway", "gnn", "kg", "llm",
                      "metrics", "obs", "serving", "utils", "wal"}),
}


def _top_package(module: str) -> str | None:
    """``repro.wal.log`` -> ``wal``; ``repro`` -> ``""``; non-repro
    modules -> ``None``."""
    if module == "repro":
        return ""
    if not module.startswith("repro."):
        return None
    return module.split(".")[1]


def resolve_import_targets(node: ast.Import | ast.ImportFrom,
                           module: str, is_package: bool = False) -> list[str]:
    """Absolute dotted module names an import statement reaches.

    Relative imports are resolved against ``module`` (the importing
    module's dotted name) using the same level arithmetic as the import
    system: level 1 anchors at the containing package — which for a
    package ``__init__`` is the module itself.  For ``from pkg import
    name`` the target recorded is ``pkg.name`` *and* ``pkg`` — ``name``
    may be a submodule or an attribute; resolving both keeps the rule
    conservative either way.
    """
    if isinstance(node, ast.Import):
        return [alias.name for alias in node.names]
    if node.level == 0:
        base = node.module or ""
    else:
        parts = module.split(".")
        strip = node.level - 1 if is_package else node.level
        anchor = parts[:len(parts) - strip] if strip else parts
        if not anchor:
            return []
        base = ".".join(anchor)
        if node.module:
            base = f"{base}.{node.module}"
    targets = [base] if base else []
    for alias in node.names:
        if base and alias.name != "*":
            targets.append(f"{base}.{alias.name}")
    return targets


class LayerDagRule(Rule):
    id = "layer-dag"
    summary = ("repro packages may only import from the layers declared "
               "in LAYER_DEPS")

    def check(self, source: SourceFile) -> Iterable[Finding]:
        importer = _top_package(source.module)
        if importer is None or importer == "":
            return
        allowed = LAYER_DEPS.get(importer)
        if allowed is None:
            yield source.finding(
                source.tree, self.id,
                f"package '{importer}' has no entry in the layer DAG "
                f"(declare it in repro.analysis.rules.layer_dag.LAYER_DEPS)")
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            for target in resolve_import_targets(node, source.module,
                                                 source.is_package):
                imported = _top_package(target)
                if imported is None or imported == "":
                    continue  # stdlib/third-party, or the repro root
                if imported.startswith("__"):
                    continue  # root-package attribute (e.g. __version__)
                if imported == importer or imported in allowed:
                    continue
                yield source.finding(
                    node, self.id,
                    f"'{source.module}' (layer '{importer}') imports "
                    f"'{target}' (layer '{imported}'), not in its "
                    f"declared dependencies")
                break  # one finding per import statement
