"""async-blocking: no blocking work on the gateway event loop.

The gateway's latency contract depends on every blocking operation —
fsync, sleeps, socket dials, subprocesses, and the fleet/engine round
calls themselves — running inside the executor
(``loop.run_in_executor``), never lexically inside an ``async def``
body.  This rule flags *calls*; passing ``self.durability.close`` as a
function reference to ``run_in_executor`` is exactly the fixed form and
does not fire.

A plain ``def`` nested inside an ``async def`` is treated as escaping
(it is usually the executor thunk), so blocking calls inside it pass;
a nested ``async def`` stays on the loop and is still checked.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..core import Finding, Rule, SourceFile

__all__ = ["AsyncBlockingRule"]

#: dotted call targets that block the calling thread
BLOCKING_CALLS = frozenset({
    "time.sleep",
    "os.fsync", "os.fdatasync", "os.sync",
    "socket.create_connection", "socket.socket",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
})

#: method names that execute a synchronous fleet/engine round
ROUND_METHODS = frozenset({
    "run_round", "ingest_round", "score_only", "pull_round",
})


def _dotted(node: ast.expr) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _AsyncBodyScanner(ast.NodeVisitor):
    def __init__(self, rule: "AsyncBlockingRule", source: SourceFile):
        self.rule = rule
        self.source = source
        self.findings: list[Finding] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # sync def nested in async def: an executor thunk, escapes

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass  # nested async defs are scanned by the rule's outer walk

    def visit_Call(self, node: ast.Call) -> None:
        self._check_call(node)
        self.generic_visit(node)

    def _check_call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted is not None:
            if dotted in BLOCKING_CALLS:
                self.findings.append(self.source.finding(
                    node, self.rule.id,
                    f"blocking call '{dotted}()' inside async def — "
                    f"route it through loop.run_in_executor"))
                return
            head, _, _ = dotted.rpartition(".")
            if "durability" in head.split("."):
                self.findings.append(self.source.finding(
                    node, self.rule.id,
                    f"durability call '{dotted}()' (fsync under the "
                    f"hood) inside async def — route it through "
                    f"loop.run_in_executor"))
                return
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr in ROUND_METHODS):
            self.findings.append(self.source.finding(
                node, self.rule.id,
                f"synchronous round call '.{node.func.attr}()' inside "
                f"async def — route it through loop.run_in_executor"))


class AsyncBlockingRule(Rule):
    id = "async-blocking"
    summary = ("gateway async def bodies must not call blocking "
               "operations directly")

    def check(self, source: SourceFile) -> Iterable[Finding]:
        if not (source.module == "repro.gateway"
                or source.module.startswith("repro.gateway.")):
            return
        for node in ast.walk(source.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                scanner = _AsyncBodyScanner(self, source)
                for stmt in node.body:
                    scanner.visit(stmt)
                yield from scanner.findings
