"""lock-guard: guarded attributes are only touched under their lock.

An attribute assignment carrying ``# repro: guarded-by[_lock]``
registers that attribute for its class: every other read or write of
``self.<attr>`` in the class body must sit lexically inside a
``with self.<lock>:`` block naming the registered lock, or inside a
method annotated ``# repro: lock-held`` (caller provides the lock —
the machine-checked replacement for "Caller holds self._lock." prose).

Scope choices, deliberately conservative:

* ``__init__`` is exempt — the object is not yet published, locking
  there would be theater.
* A nested ``def``/``lambda`` does not inherit the enclosing ``with``:
  closures escape and run later, when the lock is long released.
* Only accesses through the method's own self parameter are checked;
  cross-instance accesses (rare, and visible in review) pass.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..core import Finding, Rule, SourceFile

__all__ = ["LockGuardRule"]

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _self_name(func: ast.FunctionDef | ast.AsyncFunctionDef) -> str | None:
    args = func.args.posonlyargs + func.args.args
    return args[0].arg if args else None


def _with_locks(node: ast.With | ast.AsyncWith, self_name: str) -> set[str]:
    """Lock attribute names a ``with`` statement acquires via
    ``self.<lock>`` (plain or via ``self.<lock>: ...`` alias forms)."""
    locks: set[str] = set()
    for item in node.items:
        expr = item.context_expr
        # unwrap e.g. contextlib-style self._lock() calls
        if isinstance(expr, ast.Call):
            expr = expr.func
        if (isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == self_name):
            locks.add(expr.attr)
    return locks


class _MethodScanner(ast.NodeVisitor):
    def __init__(self, rule: "LockGuardRule", source: SourceFile,
                 guards: dict[str, str], self_name: str):
        self.rule = rule
        self.source = source
        self.guards = guards
        self.self_name = self_name
        self.held: set[str] = set()
        self.findings: list[Finding] = []

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        acquired = _with_locks(node, self.self_name) - self.held
        for item in node.items:
            self.visit(item)
        self.held |= acquired
        for stmt in node.body:
            self.visit(stmt)
        self.held -= acquired

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_nested(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_nested(node)

    def _visit_nested(self, node) -> None:
        # A closure's body runs after the enclosing with exits: no lock.
        outer, self.held = self.held, set()
        self.generic_visit(node)
        self.held = outer

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_nested(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (isinstance(node.value, ast.Name)
                and node.value.id == self.self_name
                and node.attr in self.guards):
            lock = self.guards[node.attr]
            if lock not in self.held:
                access = ("write" if isinstance(node.ctx,
                                                (ast.Store, ast.Del))
                          else "read")
                self.findings.append(self.source.finding(
                    node, self.rule.id,
                    f"{access} of guarded attribute 'self.{node.attr}' "
                    f"outside 'with self.{lock}' (annotate the method "
                    f"'# repro: lock-held' if its caller holds it)"))
        self.generic_visit(node)


class LockGuardRule(Rule):
    id = "lock-guard"
    summary = ("attributes registered '# repro: guarded-by[lock]' are "
               "only accessed under that lock")

    def check(self, source: SourceFile) -> Iterable[Finding]:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(source, node)

    def _collect_guards(self, source: SourceFile,
                        cls: ast.ClassDef) -> dict[str, str]:
        guards: dict[str, str] = {}
        for node in ast.walk(cls):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            lock = source.guarded_by(node.lineno)
            if lock is None:
                continue
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)):
                    guards[target.attr] = lock
        return guards

    def _check_class(self, source: SourceFile,
                     cls: ast.ClassDef) -> Iterable[Finding]:
        guards = self._collect_guards(source, cls)
        if not guards:
            return
        for stmt in cls.body:
            if not isinstance(stmt, _FUNC_NODES):
                continue
            if stmt.name == "__init__" or source.lock_held(stmt):
                continue
            self_name = _self_name(stmt)
            if self_name is None:
                continue
            scanner = _MethodScanner(self, source, guards, self_name)
            for inner in stmt.body:
                scanner.visit(inner)
            yield from scanner.findings
