"""typed-raise: serving-stack library code raises ``repro.errors`` types.

Inside ``repro.serving``, ``repro.runtime``, ``repro.gateway``, and
``repro.wal``, a bare ``raise RuntimeError(...)`` / ``raise
ValueError(...)`` is indistinguishable to callers from an interpreter
bug.  The error taxonomy in :mod:`repro.errors` keeps builtin
compatibility via dual inheritance (e.g. ``ConfigError(ReproError,
ValueError)``), so converting a raise never breaks an existing
``except ValueError`` — which is why this rule can insist on it.

Re-raises (``raise`` with no exception) and raising a bound name
(``raise exc``) are not flagged; only literal constructions and bare
references of the builtin names are.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..core import Finding, Rule, SourceFile

__all__ = ["TypedRaiseRule"]

#: module prefixes where the error-discipline applies
SCOPED_PREFIXES = ("repro.serving", "repro.runtime", "repro.gateway",
                   "repro.wal")

#: builtin exception names that must be replaced by repro.errors types
UNTYPED = frozenset({"RuntimeError", "ValueError"})


class TypedRaiseRule(Rule):
    id = "typed-raise"
    summary = ("serving/runtime/gateway/wal raise repro.errors types, "
               "not bare RuntimeError/ValueError")

    def check(self, source: SourceFile) -> Iterable[Finding]:
        if not any(source.module == prefix
                   or source.module.startswith(prefix + ".")
                   for prefix in SCOPED_PREFIXES):
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            name = exc.func if isinstance(exc, ast.Call) else exc
            if isinstance(name, ast.Name) and name.id in UNTYPED:
                yield source.finding(
                    node, self.id,
                    f"bare 'raise {name.id}' in {source.module} — raise "
                    f"a repro.errors type (they keep {name.id} "
                    f"compatibility via dual inheritance)")
