"""wire-consts: the two wire modules agree on their framing constants.

:mod:`repro.utils.binframe` (binary body codec) and
:mod:`repro.gateway.protocol` (stream framing + negotiation) each carry
constants the other relies on: the 2-byte magic, the 16-byte
little-endian binary header, the big-endian u32 JSON length prefix, the
32 MiB frame cap, op/flag field widths.  This rule reads the constants
out of both modules' ASTs (folding literal arithmetic like
``32 * 1024 * 1024``) and checks, per module and across them:

* ``BIN_MAGIC`` is exactly 2 bytes and ``BIN_HEADER`` is an explicit
  little-endian struct of exactly 16 bytes whose first field matches the
  magic length;
* the JSON length prefix ``_HEADER`` stays ``">I"`` (big-endian u32) and
  ``MAX_FRAME_BYTES`` fits in it;
* ``len(OPS) + 1`` fits the u8 op field, ``PROTOCOL_VERSION`` the u8
  version field (and is listed in ``SUPPORTED_VERSIONS``),
  ``FLAG_RESPONSE`` the u16 flags field;
* every framing entry point (``encode_frame``/``read_frame``/
  ``write_frame``/``recv_frame``/``send_frame``) defaults its
  ``max_bytes`` parameter to ``MAX_FRAME_BYTES`` — the cap is enforced
  on encode *and* decode paths — and both readers call the
  ``_check_length`` / ``_check_binary_lengths`` guards;
* cross-module: the first magic byte exceeds the first byte of any
  valid big-endian length prefix (``MAX_FRAME_BYTES >> 24``), the
  invariant that lets one TCP stream carry both codecs.

Checks whose module was not linted are skipped (linting a single file
should not report the other file as missing), so the self-check test
runs the rule over all of ``src/`` to see both sides.
"""

from __future__ import annotations

import ast
import struct
from typing import Iterable

from ..core import Finding, Rule, SourceFile

__all__ = ["WireConstsRule", "BINFRAME_MODULE", "PROTOCOL_MODULE"]

BINFRAME_MODULE = "repro.utils.binframe"
PROTOCOL_MODULE = "repro.gateway.protocol"

#: protocol functions that must default ``max_bytes=MAX_FRAME_BYTES``
FRAMING_FUNCS = ("encode_frame", "read_frame", "write_frame",
                 "recv_frame", "send_frame")

#: frame readers that must call both length guards before buffering
READER_FUNCS = ("read_frame", "recv_frame")

_BIN_HEADER_SIZE = 16  # documented fixed header size, bytes


def _fold(node: ast.expr):
    """Evaluate a literal constant expression; ``None`` if not literal."""
    if isinstance(node, ast.Constant):
        return node.value
    if isinstance(node, ast.Tuple):
        items = [_fold(item) for item in node.elts]
        return None if any(item is None for item in items) else tuple(items)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        value = _fold(node.operand)
        return None if value is None else -value
    if isinstance(node, ast.BinOp):
        left, right = _fold(node.left), _fold(node.right)
        if left is None or right is None:
            return None
        ops = {ast.Add: lambda a, b: a + b, ast.Sub: lambda a, b: a - b,
               ast.Mult: lambda a, b: a * b,
               ast.Pow: lambda a, b: a ** b,
               ast.LShift: lambda a, b: a << b,
               ast.RShift: lambda a, b: a >> b,
               ast.FloorDiv: lambda a, b: a // b}
        func = ops.get(type(node.op))
        return None if func is None else func(left, right)
    # struct.Struct("...") -> its format string
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
            and node.func.attr == "Struct" and len(node.args) == 1):
        return _fold(node.args[0])
    return None


class _ModuleFacts:
    def __init__(self, source: SourceFile):
        self.source = source
        self.consts: dict[str, tuple[object, ast.AST]] = {}
        self.functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        for node in source.tree.body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                value = _fold(node.value)
                if value is not None:
                    self.consts[node.targets[0].id] = (value, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[node.name] = node

    def const(self, name: str):
        entry = self.consts.get(name)
        return entry[0] if entry else None

    def anchor(self, name: str) -> ast.AST:
        entry = self.consts.get(name)
        return entry[1] if entry else self.source.tree


def _max_bytes_default(func) -> ast.expr | None:
    """The default expression of a ``max_bytes`` parameter, if any."""
    args = func.args
    positional = args.posonlyargs + args.args
    offset = len(positional) - len(args.defaults)
    for index, arg in enumerate(positional):
        if arg.arg == "max_bytes" and index >= offset:
            return args.defaults[index - offset]
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        if arg.arg == "max_bytes":
            return default
    return None


def _called_names(func) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            names.add(node.func.id)
    return names


class WireConstsRule(Rule):
    id = "wire-consts"
    summary = ("binframe and gateway protocol framing constants stay "
               "mutually consistent")

    def __init__(self) -> None:
        self.binframe: _ModuleFacts | None = None
        self.protocol: _ModuleFacts | None = None

    def check(self, source: SourceFile) -> Iterable[Finding]:
        if source.module == BINFRAME_MODULE:
            self.binframe = _ModuleFacts(source)
        elif source.module == PROTOCOL_MODULE:
            self.protocol = _ModuleFacts(source)
        return ()

    def finalize(self) -> Iterable[Finding]:
        if self.binframe is not None:
            yield from self._check_binframe(self.binframe)
        if self.protocol is not None:
            yield from self._check_protocol(self.protocol)
        if self.binframe is not None and self.protocol is not None:
            yield from self._check_cross(self.binframe, self.protocol)

    def _fail(self, facts: _ModuleFacts, name: str, message: str) -> Finding:
        return facts.source.finding(facts.anchor(name), self.id, message)

    def _check_binframe(self, facts: _ModuleFacts) -> Iterable[Finding]:
        magic = facts.const("BIN_MAGIC")
        if not isinstance(magic, bytes) or len(magic) != 2:
            yield self._fail(facts, "BIN_MAGIC",
                             "BIN_MAGIC must be a 2-byte literal "
                             f"(found {magic!r})")
            magic = None
        fmt = facts.const("BIN_HEADER")
        if not isinstance(fmt, str):
            yield self._fail(facts, "BIN_HEADER",
                             "BIN_HEADER must be struct.Struct(<literal>)")
            return
        if not fmt.startswith("<"):
            yield self._fail(facts, "BIN_HEADER",
                             f"BIN_HEADER format {fmt!r} must be explicit "
                             f"little-endian ('<' prefix)")
        try:
            size = struct.calcsize(fmt)
        except struct.error as exc:
            yield self._fail(facts, "BIN_HEADER",
                             f"BIN_HEADER format {fmt!r} is invalid: {exc}")
            return
        if size != _BIN_HEADER_SIZE:
            yield self._fail(facts, "BIN_HEADER",
                             f"BIN_HEADER is {size} bytes; the wire format "
                             f"documents a {_BIN_HEADER_SIZE}-byte header")
        if magic is not None and not fmt.lstrip("<").startswith(
                f"{len(magic)}s"):
            yield self._fail(facts, "BIN_HEADER",
                             f"BIN_HEADER format {fmt!r} does not open with "
                             f"a {len(magic)}-byte magic field "
                             f"('{len(magic)}s')")

    def _check_protocol(self, facts: _ModuleFacts) -> Iterable[Finding]:
        header = facts.const("_HEADER")
        if header != ">I":
            yield self._fail(facts, "_HEADER",
                             f"JSON length prefix _HEADER must stay "
                             f"struct.Struct('>I') (found {header!r})")
        cap = facts.const("MAX_FRAME_BYTES")
        if not isinstance(cap, int):
            yield self._fail(facts, "MAX_FRAME_BYTES",
                             "MAX_FRAME_BYTES must be a literal int "
                             "expression")
            cap = None
        elif not 0 < cap <= 0xFFFFFFFF:
            yield self._fail(facts, "MAX_FRAME_BYTES",
                             f"MAX_FRAME_BYTES={cap} does not fit the "
                             f"u32 length prefix")
        ops = facts.const("OPS")
        if isinstance(ops, tuple) and len(ops) + 1 > 0xFF:
            yield self._fail(facts, "OPS",
                             f"{len(ops)} ops no longer fit the u8 binary "
                             f"op field (op rides as index + 1)")
        version = facts.const("PROTOCOL_VERSION")
        if isinstance(version, int) and not 0 <= version <= 0xFF:
            yield self._fail(facts, "PROTOCOL_VERSION",
                             f"PROTOCOL_VERSION={version} does not fit the "
                             f"u8 binary version field")
        supported = facts.const("SUPPORTED_VERSIONS")
        if isinstance(version, int) and isinstance(supported, tuple) \
                and version not in supported:
            yield self._fail(facts, "SUPPORTED_VERSIONS",
                             f"PROTOCOL_VERSION={version} is missing from "
                             f"SUPPORTED_VERSIONS={supported}")
        flags = facts.const("FLAG_RESPONSE")
        if isinstance(flags, int) and not 0 <= flags <= 0xFFFF:
            yield self._fail(facts, "FLAG_RESPONSE",
                             f"FLAG_RESPONSE={flags:#x} does not fit the "
                             f"u16 binary flags field")
        for name in FRAMING_FUNCS:
            func = facts.functions.get(name)
            if func is None:
                yield facts.source.finding(
                    facts.source.tree, self.id,
                    f"framing function '{name}' is missing from "
                    f"{PROTOCOL_MODULE}")
                continue
            default = _max_bytes_default(func)
            if not (isinstance(default, ast.Name)
                    and default.id == "MAX_FRAME_BYTES"):
                yield facts.source.finding(
                    func, self.id,
                    f"'{name}' must take max_bytes defaulting to "
                    f"MAX_FRAME_BYTES so the cap holds on both "
                    f"encode and decode paths")
        for name in READER_FUNCS:
            func = facts.functions.get(name)
            if func is None:
                continue
            called = _called_names(func)
            for guard in ("_check_length", "_check_binary_lengths"):
                if guard not in called:
                    yield facts.source.finding(
                        func, self.id,
                        f"reader '{name}' never calls {guard}() — the "
                        f"frame cap must be enforced before buffering")

    def _check_cross(self, binframe: _ModuleFacts,
                     protocol: _ModuleFacts) -> Iterable[Finding]:
        magic = binframe.const("BIN_MAGIC")
        cap = protocol.const("MAX_FRAME_BYTES")
        if isinstance(magic, bytes) and magic and isinstance(cap, int):
            if magic[0] <= (cap >> 24):
                yield self._fail(
                    protocol, "MAX_FRAME_BYTES",
                    f"codec disambiguation broken: BIN_MAGIC[0]="
                    f"{magic[0]:#04x} must exceed the first byte of any "
                    f"valid JSON length prefix (MAX_FRAME_BYTES >> 24 = "
                    f"{cap >> 24:#04x})")
