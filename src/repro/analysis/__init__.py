"""repro.analysis — AST invariant analyzer behind ``repro lint``.

A small static-analysis framework (``core``) plus the project's five
invariant rules (``rules``): layer-dag, lock-guard, async-blocking,
typed-raise, wire-consts.  Stdlib-only by design — it sits below every
other layer and lints all of them.
"""

from .core import Analyzer, Finding, Rule, SourceFile
from .report import render_json, render_text
from .rules import RULES, default_rules

__all__ = ["Analyzer", "Finding", "Rule", "SourceFile",
           "render_json", "render_text", "RULES", "default_rules"]
