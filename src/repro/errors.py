"""Typed exception hierarchy shared across the serving stack.

Production callers need to branch on *what* failed — a shard worker
dying is retryable by restarting the fleet, a corrupt write-ahead log
segment is not — which bare ``RuntimeError`` strings cannot support.
The hierarchy lives at the top of the dependency graph (stdlib only)
so every layer can raise typed errors without importing a sibling:

``ReproError``
    Root of everything this package raises deliberately.
``DurabilityError``
    The write-ahead log / snapshot / recovery layer (:mod:`repro.wal`):
    unopenable directories, append failures, replay problems.
``WalCorruptionError``
    A CRC-invalid or truncated frame *before* the repairable tail — the
    log's history itself is damaged, not just its in-flight suffix.
``RecoveryError``
    Replay cannot rebuild a fleet (no snapshot record, unknown record
    kinds, a replayed ingest that fails to score).
``FleetError``
    Multi-process fleet serving (:class:`~repro.serving.ShardedFleet`).
``WorkerError``
    A shard worker failed mid-command or died; carries ``shard`` when a
    single shard is attributable.
``WorkerStartupError``
    A worker could not build its fleet at all (bad checkpoint payload,
    embedding-fingerprint mismatch) — retrying the command cannot help.

``DurabilityError`` and ``FleetError`` subclass ``RuntimeError`` so
call sites (and tests) written against the historical bare
``RuntimeError`` keep working; new code should catch the typed classes.
"""

from __future__ import annotations

__all__ = ["ReproError", "DurabilityError", "WalCorruptionError",
           "RecoveryError", "FleetError", "WorkerError",
           "WorkerStartupError"]


class ReproError(Exception):
    """Root of every deliberate error raised by this package."""


class DurabilityError(ReproError, RuntimeError):
    """The WAL / snapshot / recovery layer failed."""


class WalCorruptionError(DurabilityError):
    """A log frame before the repairable tail is truncated or fails its
    CRC — history is damaged, not just the in-flight suffix."""


class RecoveryError(DurabilityError):
    """Replay could not rebuild a fleet from snapshot + log suffix."""


class FleetError(ReproError, RuntimeError):
    """Multi-process fleet serving failed."""


class WorkerError(FleetError):
    """A shard worker failed mid-command or died unexpectedly.

    ``shard`` is the failing shard's index when exactly one shard is
    attributable, else ``None`` (aggregated broadcast failures).
    """

    def __init__(self, message: str, shard: int | None = None):
        super().__init__(message)
        self.shard = shard


class WorkerStartupError(WorkerError):
    """A shard worker could not build its fleet at startup; the command
    that surfaced this cannot succeed by retrying."""
