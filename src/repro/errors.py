"""Typed exception hierarchy shared across the serving stack.

Production callers need to branch on *what* failed — a shard worker
dying is retryable by restarting the fleet, a corrupt write-ahead log
segment is not — which bare ``RuntimeError`` strings cannot support.
The hierarchy lives at the top of the dependency graph (stdlib only)
so every layer can raise typed errors without importing a sibling:

``ReproError``
    Root of everything this package raises deliberately.
``DurabilityError``
    The write-ahead log / snapshot / recovery layer (:mod:`repro.wal`):
    unopenable directories, append failures, replay problems.
``WalCorruptionError``
    A CRC-invalid or truncated frame *before* the repairable tail — the
    log's history itself is damaged, not just its in-flight suffix.
``RecoveryError``
    Replay cannot rebuild a fleet (no snapshot record, unknown record
    kinds, a replayed ingest that fails to score).
``FleetError``
    Multi-process fleet serving (:class:`~repro.serving.ShardedFleet`).
``WorkerError``
    A shard worker failed mid-command or died; carries ``shard`` when a
    single shard is attributable.
``WorkerStartupError``
    A worker could not build its fleet at all (bad checkpoint payload,
    embedding-fingerprint mismatch) — retrying the command cannot help.

``ConfigError``
    A constructor or entry point was handed invalid parameters (bad
    sizes, unknown names, malformed options) — the call can never
    succeed as written.
``WindowShapeError``
    Window/score arrays with the wrong rank, an empty axis, or mixed
    shapes where one shape is required.
``StateError``
    An operation was invoked against an object in the wrong lifecycle
    state (scoring before priming, serving after close/drain).
``CheckpointError``
    A checkpoint/attach payload cannot be used: unknown format version,
    non-checkpointable stream, fingerprint mismatch.

Every concrete class also subclasses the builtin its call sites
historically raised — ``DurabilityError``, ``FleetError``, and
``StateError`` are ``RuntimeError``; ``ConfigError``,
``WindowShapeError``, and ``CheckpointError`` are ``ValueError`` — so
code (and tests) written against the bare builtins keep working; new
code should catch the typed classes.  The **typed-raise** rule of
``repro lint`` enforces that serving/runtime/gateway/wal code raises
these types rather than fresh bare builtins.
"""

from __future__ import annotations

__all__ = ["ReproError", "DurabilityError", "WalCorruptionError",
           "RecoveryError", "FleetError", "WorkerError",
           "WorkerStartupError", "ConfigError", "WindowShapeError",
           "StateError", "CheckpointError"]


class ReproError(Exception):
    """Root of every deliberate error raised by this package."""


class DurabilityError(ReproError, RuntimeError):
    """The WAL / snapshot / recovery layer failed."""


class WalCorruptionError(DurabilityError):
    """A log frame before the repairable tail is truncated or fails its
    CRC — history is damaged, not just the in-flight suffix."""


class RecoveryError(DurabilityError):
    """Replay could not rebuild a fleet from snapshot + log suffix."""


class FleetError(ReproError, RuntimeError):
    """Multi-process fleet serving failed."""


class WorkerError(FleetError):
    """A shard worker failed mid-command or died unexpectedly.

    ``shard`` is the failing shard's index when exactly one shard is
    attributable, else ``None`` (aggregated broadcast failures).
    """

    def __init__(self, message: str, shard: int | None = None):
        super().__init__(message)
        self.shard = shard


class WorkerStartupError(WorkerError):
    """A shard worker could not build its fleet at startup; the command
    that surfaced this cannot succeed by retrying."""


class ConfigError(ReproError, ValueError):
    """Invalid parameters handed to a constructor or entry point; the
    call can never succeed as written."""


class WindowShapeError(ConfigError):
    """Window/score arrays with the wrong rank, an empty axis, or mixed
    shapes where a single shape is required."""


class StateError(ReproError, RuntimeError):
    """An operation hit an object in the wrong lifecycle state (scoring
    before priming, serving after close/drain)."""


class CheckpointError(ReproError, ValueError):
    """A checkpoint/attach payload cannot be used: unknown format
    version, non-checkpointable stream, wrong fingerprint."""
