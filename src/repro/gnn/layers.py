"""Hierarchical GNN layers (paper Eq. 1-4).

Each GNN layer ``G_l`` is five sub-layers applied to *all* nodes of a
reasoning KG:

1. dense ``phi_l(X) = W X + b``                                   (Eq. 1)
2. hierarchical message passing over ``E(l)`` — the edges into the
   level-l nodes: ``M_{s,d} = X_s * X_d`` (elementwise product)   (Eq. 2)
3. hierarchical aggregation — level-l nodes average their incoming
   messages, every other node keeps its embedding                 (Eq. 3)
4. batch normalization over all nodes
5. ELU activation                                                 (Eq. 4)

Because KG structure changes at adaptation time (node pruning/creation),
the structural part is factored into a :class:`GraphSpec` compiled from a
``ReasoningKG``; layer weights depend only on dimensionalities, so a
recompile never invalidates trained weights.
"""

from __future__ import annotations

import numpy as np

from ..kg.graph import ReasoningKG
from ..nn.layers import BatchNorm, Dense, Module
from ..nn.tensor import Tensor

__all__ = ["GraphSpec", "HierarchicalGNNLayer"]


class GraphSpec:
    """Immutable structural compilation of a reasoning KG.

    Attributes
    ----------
    node_ids:
        Sorted node ids; row ``i`` of the GNN's node-embedding matrix
        corresponds to ``node_ids[i]``.
    num_levels:
        ``depth + 2`` (sensor level 0 ... embedding level depth+1).
    edge_sources / edge_targets:
        Per level ``l``: integer row indices of E(l)'s endpoints.
    mean_scale / receive_mask / keep_mask:
        Per level ``l``: the (|V|, 1) reciprocal in-degree of each node (0
        for nodes receiving no messages), the (|V|, 1) indicator of nodes
        in V(l) that actually receive messages, and its complement.
        Together with a segment-sum over ``edge_targets`` these realize
        Eq. 3's mean aggregation without a dense (|V|, |E(l)|) matrix.
    """

    def __init__(self, kg: ReasoningKG):
        if kg.sensor_id is None or kg.embedding_id is None:
            raise ValueError("KG must have terminals attached before compilation")
        kg.validate()
        self.node_ids: list[int] = sorted(n.node_id for n in kg.nodes())
        self._row: dict[int, int] = {nid: i for i, nid in enumerate(self.node_ids)}
        self.num_nodes = len(self.node_ids)
        self.depth = kg.depth
        self.num_levels = kg.depth + 2
        self.sensor_row = self._row[kg.sensor_id]
        self.embedding_row = self._row[kg.embedding_id]
        self.levels = np.array([kg.node(nid).level for nid in self.node_ids])
        self.sensor_one_hot = np.zeros((self.num_nodes, 1))
        self.sensor_one_hot[self.sensor_row, 0] = 1.0

        ids = np.asarray(self.node_ids, dtype=np.int64)
        self.edge_sources: list[np.ndarray] = []
        self.edge_targets: list[np.ndarray] = []
        self.mean_scale: list[np.ndarray] = []
        self.receive_mask: list[np.ndarray] = []
        self.keep_mask: list[np.ndarray] = []
        for level in range(self.num_levels):
            edges = np.asarray(kg.edges_at_level(level),
                               dtype=np.int64).reshape(-1, 2)
            # ``node_ids`` is sorted, so row lookup is a binary search.
            sources = np.searchsorted(ids, edges[:, 0])
            targets = np.searchsorted(ids, edges[:, 1])
            self.edge_sources.append(sources)
            self.edge_targets.append(targets)
            in_degree = np.bincount(targets, minlength=self.num_nodes)
            receives = in_degree > 0
            scale = np.zeros((self.num_nodes, 1))
            scale[receives, 0] = 1.0 / in_degree[receives]
            mask = receives.astype(np.float64)[:, None]
            self.mean_scale.append(scale)
            self.receive_mask.append(mask)
            self.keep_mask.append(1.0 - mask)

    def row_of(self, node_id: int) -> int:
        """Row index of a node id in the embedding matrix."""
        return self._row[node_id]


class HierarchicalGNNLayer(Module):
    """One GNN layer ``G_l`` (Eq. 1-4), structure supplied per call.

    ``forward(x, spec, level)`` takes node embeddings ``x`` of shape
    ``(B, |V|, D_in)`` and returns ``(B, |V|, D_out)``.
    """

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator):
        super().__init__()
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.dense = Dense(in_dim, out_dim, rng)
        self.norm = BatchNorm(out_dim)

    def forward(self, x: Tensor, spec: GraphSpec, level: int) -> Tensor:
        if x.ndim != 3:
            raise ValueError(f"expected (B, |V|, D) embeddings, got {x.shape}")
        if x.shape[1] != spec.num_nodes:
            raise ValueError("embedding matrix does not match the graph spec")
        refined = self.dense(x)  # Eq. 1, applied to all nodes
        return self.finish(refined, spec, level)

    def finish(self, refined: Tensor, spec: GraphSpec, level: int) -> Tensor:
        """Sub-layers 2-5 (messages, aggregation, norm, activation) applied
        to an already-refined ``phi_l(X)`` of shape ``(B, |V|, D_out)``."""
        sources = spec.edge_sources[level]
        if sources.size:
            targets = spec.edge_targets[level]
            # Eq. 2: per-edge messages X_s * X_d.
            messages = refined[:, sources, :] * refined[:, targets, :]
            # Eq. 3: mean-aggregate into receiving nodes (segment-sum over
            # the target indices, scaled by reciprocal in-degree), identity
            # elsewhere.  ``mean_scale`` is zero on non-receiving nodes, so
            # the aggregated term needs no extra masking.
            summed = Tensor.segment_sum(messages, targets, spec.num_nodes)
            aggregated = summed * Tensor(spec.mean_scale[level])
            combined = refined * Tensor(spec.keep_mask[level]) + aggregated
        else:
            combined = refined

        return self.norm(combined).elu()  # Eq. 4
