"""End-to-end MissionGNN-style decision model (paper Fig. 2B).

``MissionGNNModel`` chains, per frame window:

1. per-KG hierarchical GNN reasoning (sensor -> embedding node) producing
   ``r_{T_i}`` for each mission KG;
2. concatenation ``f_t = r_{T_1} ^ ... ^ r_{T_n}``;
3. the short-term temporal transformer over the last ``T`` frames;
4. the linear decision head (Eq. 5).

The model's trainable surface is configurable in the exact way the paper
needs: during initial training everything learns; after deployment
``freeze()`` locks all model weights and ``set_tokens_trainable(True)``
re-opens *only* the KG token embeddings for continuous adaptation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..embedding.joint_space import JointEmbeddingModel
from ..kg.graph import ReasoningKG
from ..nn.layers import Module
from ..nn.tensor import Tensor, no_grad
from ..utils.rng import derive_rng
from .decision import DecisionModel
from .model import HierarchicalGNN, KGReasoner
from .temporal import ShortTermTemporalModel

__all__ = ["MissionGNNConfig", "MissionGNNModel"]


@dataclass
class MissionGNNConfig:
    """Model hyperparameters; defaults follow the paper's Section IV-A."""

    gnn_hidden_dim: int = 8        # D_{m_i,l} = 8 across all layers
    temporal_window: int = 8       # T (frames per short-term window)
    temporal_model_dim: int = 128  # transformer inner dimensionality
    temporal_heads: int = 8        # attention heads
    temporal_layers: int = 1
    seed: int = 7


class MissionGNNModel(Module):
    """Multi-KG GNN reasoner + temporal transformer + decision head."""

    def __init__(self, kgs: list[ReasoningKG], embedding_model: JointEmbeddingModel,
                 config: MissionGNNConfig | None = None):
        super().__init__()
        if not kgs:
            raise ValueError("need at least one mission KG")
        self.config = config or MissionGNNConfig()
        self.embedding_model = embedding_model
        cfg = self.config

        self.reasoners: list[KGReasoner] = []
        for index, kg in enumerate(kgs):
            rng = derive_rng(cfg.seed, "gnn", index)
            gnn = HierarchicalGNN(depth=kg.depth,
                                  input_dim=embedding_model.joint_dim,
                                  hidden_dim=cfg.gnn_hidden_dim, rng=rng)
            self.reasoners.append(KGReasoner(kg, embedding_model, gnn))

        self.reasoning_dim = cfg.gnn_hidden_dim * len(kgs)
        self.temporal = ShortTermTemporalModel(
            reasoning_dim=self.reasoning_dim, window=cfg.temporal_window,
            rng=derive_rng(cfg.seed, "temporal"),
            model_dim=cfg.temporal_model_dim, num_heads=cfg.temporal_heads,
            num_layers=cfg.temporal_layers)
        self.decision = DecisionModel(self.reasoning_dim, num_anomaly_types=len(kgs),
                                      rng=derive_rng(cfg.seed, "decision"))

    # ------------------------------------------------------------------
    # Forward paths
    # ------------------------------------------------------------------
    def reason_frames(self, frames: np.ndarray) -> Tensor:
        """Frames (B, frame_dim) -> concatenated reasoning embeddings (B, D)."""
        outputs = [reasoner(frames) for reasoner in self.reasoners]
        return outputs[0] if len(outputs) == 1 else Tensor.concat(outputs, axis=1)

    def forward(self, windows: np.ndarray) -> Tensor:
        """Frame windows (B, T, frame_dim) -> decision logits (B, n+1)."""
        windows = np.asarray(windows, dtype=np.float64)
        if windows.ndim != 3:
            raise ValueError(f"expected (B, T, frame_dim), got {windows.shape}")
        batch, length, frame_dim = windows.shape
        flat = windows.reshape(batch * length, frame_dim)
        reasoning = self.reason_frames(flat).reshape(batch, length, self.reasoning_dim)
        pooled = self.temporal(reasoning)
        return self.decision(pooled)

    def anomaly_scores(self, windows: np.ndarray) -> np.ndarray:
        """Inference-only anomaly probabilities p_A for each window (B,)."""
        with no_grad():
            probs = self.forward(windows).softmax(axis=-1)
        return DecisionModel.anomaly_probability(probs.numpy())

    # ------------------------------------------------------------------
    # Adaptation surface control (paper Fig. 2C)
    # ------------------------------------------------------------------
    def freeze_for_deployment(self) -> None:
        """Freeze every model weight; open only the KG token embeddings."""
        self.freeze()
        self.eval()
        for reasoner in self.reasoners:
            reasoner.set_tokens_trainable(True)

    def token_parameters(self) -> list[Tensor]:
        """All KG token-embedding tensors (the adaptation leaves)."""
        params: list[Tensor] = []
        for reasoner in self.reasoners:
            params.extend(reasoner.token_tensors().values())
        return params

    def commit_tokens(self) -> None:
        for reasoner in self.reasoners:
            reasoner.commit_tokens()

    @property
    def kgs(self) -> list[ReasoningKG]:
        return [reasoner.kg for reasoner in self.reasoners]
