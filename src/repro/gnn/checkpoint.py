"""Deployment checkpoints: one artifact for the whole edge deployment.

``state_dict`` covers trainable parameters only; a real deployment must
also ship batch-normalization running statistics and the mission KGs
(structure + token embeddings).  This module bundles everything the edge
device needs into a single JSON file, so "deploy" is one save on the cloud
side and one load on the edge side — and, symmetrically, an adapted edge
deployment can be checkpointed and inspected offline.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

from ..embedding.joint_space import JointEmbeddingModel
from ..kg.serialization import kg_from_dict, kg_to_dict
from ..utils.serialization import atomic_write_json
from ..utils.serialization import decode_array as _decode
from ..utils.serialization import encode_array as _encode
from .pipeline import MissionGNNConfig, MissionGNNModel

__all__ = ["save_deployment", "load_deployment", "deployment_to_dict",
           "deployment_from_dict"]

_FORMAT_VERSION = 1


def deployment_to_dict(model: MissionGNNModel) -> dict:
    """Serialize a trained model + its KGs to a JSON-safe dict.

    ``state_dict`` carries the batch-norm running statistics natively (they
    are registered buffers), so ``weights`` is the complete model state.
    """
    return {
        "format_version": _FORMAT_VERSION,
        "config": asdict(model.config),
        "weights": {name: _encode(value)
                    for name, value in model.state_dict().items()},
        "kgs": [kg_to_dict(kg) for kg in model.kgs],
    }


def deployment_from_dict(payload: dict,
                         embedding_model: JointEmbeddingModel) -> MissionGNNModel:
    """Rebuild a deployable model from :func:`deployment_to_dict` output.

    The joint embedding model is frozen and shared infrastructure (the
    paper ships it once, not per deployment), so it is passed in rather
    than serialized.
    """
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported deployment format version: {version}")
    config = MissionGNNConfig(**payload["config"])
    kgs = [kg_from_dict(entry) for entry in payload["kgs"]]
    model = MissionGNNModel(kgs, embedding_model, config)
    model.load_state_dict({name: _decode(value)
                           for name, value in payload["weights"].items()})
    # Older artifacts shipped BN statistics in a side section instead of the
    # state dict; apply it when present so they stay loadable.
    for kg_index, reasoner in enumerate(model.reasoners):
        for layer_index, layer in enumerate(reasoner.gnn.layers):
            stats = payload.get("norm_stats", {}).get(
                f"kg{kg_index}.layer{layer_index}")
            if stats is not None:
                layer.norm.running_mean = _decode(stats["running_mean"])
                layer.norm.running_var = _decode(stats["running_var"])
    model.eval()
    return model


def save_deployment(model: MissionGNNModel, path: str | Path) -> None:
    """Write the full deployment artifact to ``path``."""
    atomic_write_json(path, deployment_to_dict(model))


def load_deployment(path: str | Path,
                    embedding_model: JointEmbeddingModel) -> MissionGNNModel:
    """Load a deployment artifact written by :func:`save_deployment`."""
    return deployment_from_dict(json.loads(Path(path).read_text()),
                                embedding_model)
