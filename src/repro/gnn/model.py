"""Per-KG hierarchical GNN and the multi-KG reasoning front end.

``HierarchicalGNN`` stacks ``depth + 2`` :class:`HierarchicalGNNLayer`
blocks (paper: "d + 2 GNN layers are applied in a hierarchical manner").
Layer 0 refines the raw joint-space embeddings (its E(0) is empty: the
sensor node receives no messages), layers 1..depth propagate reasoning
through the concept levels, and layer depth+1 collects into the embedding
node, whose final vector is the KG's reasoning embedding ``r_T``.

``KGReasoner`` assembles the GNN input from a KG: the sensor row carries
the encoded frame ``E_I(F_t)``; every concept row carries the differentiable
text-path embedding of that node's learnable token matrix.  This is the
junction where continuous adaptation gradients flow from the decision loss
into the KG token embeddings.
"""

from __future__ import annotations

import numpy as np

from ..embedding.joint_space import JointEmbeddingModel
from ..kg.graph import ReasoningKG
from ..nn.layers import Module
from ..nn.tensor import Tensor
from .layers import GraphSpec, HierarchicalGNNLayer

__all__ = ["HierarchicalGNN", "KGReasoner"]


class HierarchicalGNN(Module):
    """Stack of ``depth + 2`` hierarchical GNN layers for one KG shape.

    Weights depend only on dimensionalities, never on the concrete graph,
    so the same instance serves the KG across structural adaptations.
    """

    def __init__(self, depth: int, input_dim: int, hidden_dim: int,
                 rng: np.random.Generator):
        super().__init__()
        self.depth = depth
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        dims = [input_dim] + [hidden_dim] * (depth + 2)
        self.layers = [
            HierarchicalGNNLayer(dims[i], dims[i + 1], rng)
            for i in range(depth + 2)
        ]

    @property
    def output_dim(self) -> int:
        return self.hidden_dim

    def forward(self, x: Tensor, spec: GraphSpec) -> Tensor:
        """Propagate (B, |V|, input_dim) -> final reasoning embedding (B, D).

        Returns the embedding-node row of the last layer's output — the
        paper's ``r_T`` extracted from ``X_{d+2}``.
        """
        if spec.depth != self.depth:
            raise ValueError(f"spec depth {spec.depth} != model depth {self.depth}")
        h = x
        for level, layer in enumerate(self.layers):
            h = layer(h, spec, level)
        return h[:, spec.embedding_row, :]

    def forward_embedded(self, base: Tensor, encoded: Tensor,
                         spec: GraphSpec) -> Tensor:
        """Like :meth:`forward`, from the factored GNN input.

        ``base`` is the (|V|, input_dim) static node matrix (concept rows
        from the text path, sensor row ignored) and ``encoded`` the
        (B, input_dim) frame encodings destined for the sensor row.  The
        layer-0 dense refinement distributes over that row structure, so
        instead of materializing the (B, |V|, input_dim) input — by far the
        largest tensor of the whole forward pass, ``input_dim`` being the
        joint-space width — we refine the two factors separately and
        assemble the much smaller (B, |V|, hidden) result.
        """
        if spec.depth != self.depth:
            raise ValueError(f"spec depth {spec.depth} != model depth {self.depth}")
        first = self.layers[0]
        refined_base = first.dense(base)        # (|V|, hidden)
        refined_frames = first.dense(encoded)   # (B, hidden)
        sensor = Tensor(spec.sensor_one_hot)    # (|V|, 1)
        refined = (refined_base * (1.0 - sensor)
                   + refined_frames.reshape(encoded.shape[0], 1, -1) * sensor)
        h = first.finish(refined, spec, 0)
        for level, layer in enumerate(self.layers[1:], start=1):
            h = layer(h, spec, level)
        return h[:, spec.embedding_row, :]


class KGReasoner(Module):
    """Binds one reasoning KG + the joint embedding model + a GNN.

    Responsibilities:

    * compile and cache the :class:`GraphSpec` (recompiled on structural
      adaptation via :meth:`refresh_structure`);
    * build the GNN input matrix: concept-node rows from learnable token
      embeddings (differentiable), sensor row from encoded frames;
    * expose the per-node token tensors so the adaptation controller can
      mark them as trainable leaves.
    """

    def __init__(self, kg: ReasoningKG, embedding_model: JointEmbeddingModel,
                 gnn: HierarchicalGNN):
        super().__init__()
        if not kg.tokens_initialized():
            raise ValueError("KG token embeddings must be initialized "
                             "(call kg.initialize_tokens) before reasoning")
        self.kg = kg
        self.embedding_model = embedding_model
        self.gnn = gnn
        self.spec = GraphSpec(kg)
        self._token_tensors: dict[int, Tensor] = {}
        self._sync_token_tensors(trainable=False)

    # ------------------------------------------------------------------
    # Token tensors (the adaptation target)
    # ------------------------------------------------------------------
    def _sync_token_tensors(self, trainable: bool) -> None:
        self._token_tensors = {
            node.node_id: Tensor(node.token_embeddings, requires_grad=trainable)
            for node in self.kg.concept_nodes()
        }

    def token_tensors(self) -> dict[int, Tensor]:
        """Node id -> its learnable token-embedding tensor."""
        return dict(self._token_tensors)

    def set_tokens_trainable(self, trainable: bool) -> None:
        """Mark the KG token embeddings as adaptation leaves (or freeze them)."""
        self._sync_token_tensors(trainable=trainable)

    def commit_tokens(self) -> None:
        """Write current token tensor values back into the KG nodes."""
        for node in self.kg.concept_nodes():
            tensor = self._token_tensors.get(node.node_id)
            if tensor is not None:
                node.token_embeddings = tensor.data.copy()

    def refresh_structure(self) -> None:
        """Recompile after node pruning/creation changed the KG."""
        self.spec = GraphSpec(self.kg)
        trainable = any(t.requires_grad for t in self._token_tensors.values())
        self._sync_token_tensors(trainable=trainable)

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def node_embedding_matrix(self) -> Tensor:
        """(|V|, joint_dim) matrix of node embeddings via the text path.

        The sensor row is zeroed here and overwritten with the frame
        encoding in :meth:`forward`.  The embedding node gets a small
        constant vector rather than zeros: Eq. 2's messages multiply source
        and destination embeddings, so an exactly-zero destination would
        annihilate both the messages into the embedding node and — worse —
        every gradient flowing back through them at initialization.
        """
        joint_dim = self.embedding_model.joint_dim
        constant_row = np.full(joint_dim, 0.05 / np.sqrt(joint_dim))
        rows: list[Tensor] = []
        for node_id in self.spec.node_ids:
            node = self.kg.node(node_id)
            if node.is_concept:
                rows.append(self.embedding_model.encode_token_tensor(
                    self._token_tensors[node.node_id]))
            elif node.is_embedding:
                rows.append(Tensor(constant_row))
            else:
                rows.append(Tensor(np.zeros(joint_dim)))
        return Tensor.stack(rows, axis=0)

    def forward(self, frames: np.ndarray) -> Tensor:
        """Reason over a batch of frames -> (B, gnn_output_dim).

        ``frames`` holds raw frame features (B, frame_dim); they are encoded
        with the frozen image encoder E_I and placed on the sensor node.
        """
        frames = np.asarray(frames, dtype=np.float64)
        if frames.ndim == 1:
            frames = frames[None, :]
        encoded = self.embedding_model.encode_image(frames)  # (B, joint_dim)
        base = self.node_embedding_matrix()  # (|V|, joint)
        # Frames are data (constant on the tape); adaptation gradients flow
        # through the concept rows of ``base`` into the token embeddings.
        return self.gnn.forward_embedded(base, Tensor(encoded), self.spec)
