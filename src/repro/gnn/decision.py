"""Decision model ``f_dec`` (paper Eq. 5) and probability decomposition.

A single linear layer + softmax over ``n + 1`` classes: index 0 is
"normal"; indices 1..n are the mission anomaly types.  The paper's score
decomposition:

* ``p_N(F_t)   = s_t,0``                     (probability the frame is normal)
* ``p_A(F_t)   = 1 - p_N(F_t)``              (anomaly probability — the score
  the continuous-adaptation monitor tracks)
* ``p_{i|A}    = s_t,i / (1 - p_N)``         (anomaly type posterior)
"""

from __future__ import annotations

import numpy as np

from ..nn.layers import Dense, Module
from ..nn.tensor import Tensor

__all__ = ["DecisionModel"]


class DecisionModel(Module):
    """Linear decision head over the temporal model's output embedding."""

    def __init__(self, input_dim: int, num_anomaly_types: int,
                 rng: np.random.Generator):
        super().__init__()
        if num_anomaly_types < 1:
            raise ValueError("need at least one anomaly type")
        self.num_anomaly_types = num_anomaly_types
        self.linear = Dense(input_dim, num_anomaly_types + 1, rng)

    def forward(self, embeddings: Tensor) -> Tensor:
        """Return raw logits (B, n+1); use :meth:`probabilities` for s_t."""
        return self.linear(embeddings)

    def probabilities(self, embeddings: Tensor) -> Tensor:
        """s_t = softmax(W f'_t + b) (Eq. 5)."""
        return self.forward(embeddings).softmax(axis=-1)

    # -- score decomposition (numpy convenience, non-differentiable) -----
    @staticmethod
    def normal_probability(probs: np.ndarray) -> np.ndarray:
        """p_N(F_t) = s_t,0."""
        return probs[..., 0]

    @staticmethod
    def anomaly_probability(probs: np.ndarray) -> np.ndarray:
        """p_A(F_t) = 1 - p_N(F_t)."""
        return 1.0 - probs[..., 0]

    @staticmethod
    def anomaly_type_posterior(probs: np.ndarray, eps: float = 1e-12) -> np.ndarray:
        """p_{i|A}(F_t) = s_t,i / (1 - p_N), shape (..., n)."""
        denom = np.maximum(1.0 - probs[..., :1], eps)
        return probs[..., 1:] / denom
