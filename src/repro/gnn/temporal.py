"""Short-term temporal model ``T : R^{T x D} -> R^D`` (paper Section III-C).

A causal transformer consumes the reasoning embeddings of the previous
``T`` consecutive frames and returns only the last output embedding —
"focusing on short-term relationships, the model assumes anomalies are
detectable in brief intervals".  The paper's configuration: inner
dimensionality 128 with 8 attention heads.
"""

from __future__ import annotations

import numpy as np

from ..nn.attention import TransformerEncoder
from ..nn.layers import Module
from ..nn.tensor import Tensor

__all__ = ["ShortTermTemporalModel"]


class ShortTermTemporalModel(Module):
    """Causal transformer over reasoning-embedding windows.

    Parameters
    ----------
    reasoning_dim:
        D — the concatenated reasoning-embedding width (sum of per-KG GNN
        output dims).
    window:
        T — number of consecutive frames per window.
    model_dim / num_heads / num_layers:
        Transformer internals (paper: 128 / 8).
    """

    def __init__(self, reasoning_dim: int, window: int,
                 rng: np.random.Generator, model_dim: int = 128,
                 num_heads: int = 8, num_layers: int = 1):
        super().__init__()
        self.reasoning_dim = reasoning_dim
        self.window = window
        self.encoder = TransformerEncoder(
            input_dim=reasoning_dim, model_dim=model_dim, num_heads=num_heads,
            num_layers=num_layers, rng=rng, max_length=window, causal=True)

    def forward(self, sequences: Tensor) -> Tensor:
        """(B, T, D) reasoning windows -> (B, D) last-position embeddings."""
        if sequences.ndim != 3:
            raise ValueError(f"expected (B, T, D), got {sequences.shape}")
        if sequences.shape[1] != self.window:
            raise ValueError(
                f"window length {sequences.shape[1]} != configured {self.window}")
        if sequences.shape[2] != self.reasoning_dim:
            raise ValueError(
                f"reasoning dim {sequences.shape[2]} != configured {self.reasoning_dim}")
        return self.encoder.last_output(sequences)
