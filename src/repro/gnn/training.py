"""Initial (cloud-side) training of the GNN-based decision model (Fig. 2B).

Trains all model weights — GNN layers, temporal transformer, decision head —
with AdamW and the MissionGNN loss (cross-entropy + lambda_spa sparsity +
lambda_smt smoothness).  KG token embeddings stay at their LLM-derived
initial values throughout; they only become trainable after deployment.

Paper settings (Section IV-A): AdamW lr=1e-5, weight decay 1.0,
betas=(0.9, 0.999), eps=1e-8, lambda_spa = lambda_smt = 0.001, 3000 steps
with mini-batch 128.  Those are tuned for ImageBind-Huge features; our
synthetic substrate separates faster, so the defaults here are smaller but
every knob is exposed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nn.losses import vad_loss
from ..nn.optim import AdamW
from ..utils.rng import derive_rng
from .pipeline import MissionGNNModel

__all__ = ["TrainingConfig", "TrainingResult", "DecisionModelTrainer"]


@dataclass
class TrainingConfig:
    """Trainer hyperparameters (paper defaults in comments)."""

    steps: int = 300            # paper: 3000
    batch_size: int = 32        # paper: 128
    learning_rate: float = 3e-3  # paper: 1e-5 (for ImageBind-scale features)
    weight_decay: float = 1e-4  # paper: 1.0
    lambda_spa: float = 0.001
    lambda_smt: float = 0.001
    balanced_batches: bool = True  # oversample anomalies (UCF-Crime is ~2% pos)
    seed: int = 7
    log_every: int = 50


@dataclass
class TrainingResult:
    """Loss curve and final training metrics."""

    losses: list[float] = field(default_factory=list)
    steps: int = 0
    final_loss: float = float("nan")


class DecisionModelTrainer:
    """Mini-batch trainer over (windows, labels) arrays.

    ``windows``: (N, T, frame_dim) frame windows; ``labels``: (N,) ints with
    0 = normal and i >= 1 = anomaly type i.
    """

    def __init__(self, model: MissionGNNModel, config: TrainingConfig | None = None):
        self.model = model
        self.config = config or TrainingConfig()

    def train(self, windows: np.ndarray, labels: np.ndarray) -> TrainingResult:
        cfg = self.config
        windows = np.asarray(windows, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        if windows.shape[0] != labels.shape[0]:
            raise ValueError("windows and labels disagree on sample count")
        if windows.shape[0] == 0:
            raise ValueError("empty training set")
        n_classes = self.model.decision.num_anomaly_types + 1
        if labels.min() < 0 or labels.max() >= n_classes:
            raise ValueError(f"labels must lie in [0, {n_classes - 1}]")

        self.model.train()
        optimizer = AdamW(self.model.parameters(), lr=cfg.learning_rate,
                          weight_decay=cfg.weight_decay)
        rng = derive_rng(cfg.seed, "trainer")
        result = TrainingResult()
        n = windows.shape[0]
        normal_idx = np.flatnonzero(labels == 0)
        anomaly_idx = np.flatnonzero(labels > 0)
        balanced = cfg.balanced_batches and normal_idx.size and anomaly_idx.size
        for step in range(cfg.steps):
            if balanced:
                half = max(cfg.batch_size // 2, 1)
                batch_idx = np.concatenate([
                    rng.choice(normal_idx, size=half,
                               replace=normal_idx.size < half),
                    rng.choice(anomaly_idx, size=half,
                               replace=anomaly_idx.size < half),
                ])
            else:
                batch_idx = rng.choice(n, size=min(cfg.batch_size, n), replace=False)
            # Keep temporal order within the batch so the smoothness term
            # compares near-consecutive windows.
            batch_idx = np.sort(batch_idx)
            logits = self.model(windows[batch_idx])
            loss = vad_loss(logits, labels[batch_idx],
                            lambda_spa=cfg.lambda_spa, lambda_smt=cfg.lambda_smt)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            result.losses.append(float(loss.item()))
        result.steps = cfg.steps
        result.final_loss = result.losses[-1] if result.losses else float("nan")
        self.model.eval()
        return result
