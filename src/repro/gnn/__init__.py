"""Hierarchical GNN decision model (MissionGNN substrate, paper Fig. 2B)."""

from .decision import DecisionModel
from .layers import GraphSpec, HierarchicalGNNLayer
from .model import HierarchicalGNN, KGReasoner
from .pipeline import MissionGNNConfig, MissionGNNModel
from .temporal import ShortTermTemporalModel
from .checkpoint import (
    deployment_from_dict,
    deployment_to_dict,
    load_deployment,
    save_deployment,
)
from .training import DecisionModelTrainer, TrainingConfig, TrainingResult

__all__ = [
    "GraphSpec",
    "HierarchicalGNNLayer",
    "HierarchicalGNN",
    "KGReasoner",
    "ShortTermTemporalModel",
    "DecisionModel",
    "MissionGNNConfig",
    "MissionGNNModel",
    "DecisionModelTrainer",
    "TrainingConfig",
    "TrainingResult",
    "save_deployment",
    "load_deployment",
    "deployment_to_dict",
    "deployment_from_dict",
]
