"""repro: Continuous GNN-based anomaly detection on edge via adaptive KG learning.

A from-scratch Python reproduction of the DATE 2025 paper (Yun et al.,
arXiv:2411.09072): MissionGNN-style hierarchical GNN reasoning over
LLM-generated mission-specific knowledge graphs, plus the paper's core
contribution — continuous knowledge-graph adaptive learning on edge devices
(score monitoring, token-embedding-only updates, node pruning/creation, and
interpretable KG retrieval).

Quickstart
----------
>>> from repro.api import Pipeline, ReproConfig
>>> cfg = ReproConfig().override("experiment.train_steps", 50)
>>> pipe = Pipeline.from_config(cfg)
>>> model = pipe.train("Stealing")                # cloud-side, registry-cached
>>> windows, labels = pipe.eval_windows("Stealing")
>>> scores = model.anomaly_scores(windows)        # deployed inference
>>> deployment = pipe.deploy("Stealing")          # edge runtime (adaptive)
>>> log = deployment.ingest(windows)              # may trigger KG adaptation

``repro.api`` is the stable public surface; ``Deployment.save``/``load``
checkpoint the full edge runtime (weights, BN statistics, KGs, monitor
state) to a single JSON artifact.  The CLI mirrors it:
``python -m repro.cli serve --mission Stealing --set adaptation.monitor.window=72``.

Subpackages
-----------
``repro.api``         public deployment facade (Pipeline/Deployment/ReproConfig)
``repro.runtime``     unified serving core (ServingEngine/backends/policies)
``repro.metrics``     serving metrics primitives (counters/gauges/histograms)
``repro.obs``         end-to-end request tracing (TraceRecorder/spans/exports)
``repro.serving``     multi-stream fleet serving (DeploymentFleet/MicroBatcher)
``repro.gateway``     async TCP serving gateway (GatewayServer/GatewayClient)
``repro.wal``         durability (write-ahead log/snapshots/crash recovery)
``repro.errors``      typed exception hierarchy shared across the stack
``repro.nn``          numpy autodiff + layers (PyTorch substitute)
``repro.concepts``    surveillance concept ontology (ConceptNet-lite)
``repro.embedding``   BPE tokenizer + joint text/image space (ImageBind sub)
``repro.llm``         SyntheticLLM oracle (GPT-4 substitute)
``repro.kg``          hierarchical reasoning KGs + generation framework
``repro.gnn``         hierarchical GNN decision model (MissionGNN)
``repro.adaptation``  continuous KG adaptive learning (the contribution)
``repro.data``        synthetic UCF-Crime + trend-shift streams
``repro.edge``        edge/cloud cost models (Table I)
``repro.eval``        metrics + experiment harnesses (Fig. 5/6, Table I)
"""

__version__ = "1.8.0"

__all__ = [
    "api", "runtime", "metrics", "obs", "serving", "gateway", "wal",
    "errors", "nn", "concepts", "embedding", "llm", "kg", "gnn",
    "adaptation", "data", "edge", "eval", "utils",
]
