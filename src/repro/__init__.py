"""repro: Continuous GNN-based anomaly detection on edge via adaptive KG learning.

A from-scratch Python reproduction of the DATE 2025 paper (Yun et al.,
arXiv:2411.09072): MissionGNN-style hierarchical GNN reasoning over
LLM-generated mission-specific knowledge graphs, plus the paper's core
contribution — continuous knowledge-graph adaptive learning on edge devices
(score monitoring, token-embedding-only updates, node pruning/creation, and
interpretable KG retrieval).

Quickstart
----------
>>> from repro.eval import ExperimentContext, ExperimentConfig
>>> ctx = ExperimentContext(ExperimentConfig(train_steps=50))
>>> model = ctx.train_model("Stealing")          # cloud-side training
>>> windows, labels = ctx.eval_windows("Stealing")
>>> scores = model.anomaly_scores(windows)        # deployed inference

Subpackages
-----------
``repro.nn``          numpy autodiff + layers (PyTorch substitute)
``repro.concepts``    surveillance concept ontology (ConceptNet-lite)
``repro.embedding``   BPE tokenizer + joint text/image space (ImageBind sub)
``repro.llm``         SyntheticLLM oracle (GPT-4 substitute)
``repro.kg``          hierarchical reasoning KGs + generation framework
``repro.gnn``         hierarchical GNN decision model (MissionGNN)
``repro.adaptation``  continuous KG adaptive learning (the contribution)
``repro.data``        synthetic UCF-Crime + trend-shift streams
``repro.edge``        edge/cloud cost models (Table I)
``repro.eval``        metrics + experiment harnesses (Fig. 5/6, Table I)
"""

__version__ = "1.0.0"

__all__ = [
    "nn", "concepts", "embedding", "llm", "kg", "gnn", "adaptation",
    "data", "edge", "eval", "utils",
]
