"""Byte-pair encoding tokenizer with encoder *and* decoder.

The paper's interpretable KG retrieval (Section III-E) decodes learned token
embeddings back to words via the tokenizer's decoder over "the original
simple byte-pair encoding (BPE) vocabulary used in ImageBind".  We implement
real BPE (Sennrich et al., 2016): word-level frequency counting, iterative
most-frequent-pair merging with an end-of-word marker, deterministic
tie-breaking, and a decoder that restores surface text.
"""

from __future__ import annotations

import json
import re
from collections import Counter
from pathlib import Path

from ..utils.serialization import atomic_write_json

__all__ = ["BPETokenizer"]

_EOW = "</w>"
_WORD_RE = re.compile(r"[a-z0-9]+|[^\sa-z0-9]")


def _word_tokens(text: str) -> list[str]:
    """Lowercase and split into words/punctuation."""
    return _WORD_RE.findall(text.lower())


class BPETokenizer:
    """A trainable byte-pair-encoding tokenizer.

    Special tokens: ``<pad>`` (0) and ``<unk>`` (1).  Every other id is a
    learned subword; ids are assigned deterministically (specials, then
    sorted initial symbols, then merges in training order).
    """

    PAD = "<pad>"
    UNK = "<unk>"

    def __init__(self) -> None:
        self.merges: list[tuple[str, str]] = []
        self.token_to_id: dict[str, int] = {}
        self.id_to_token: list[str] = []
        self._merge_ranks: dict[tuple[str, str], int] = {}
        self._cache: dict[str, list[str]] = {}

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def train(self, corpus: list[str], num_merges: int = 300) -> "BPETokenizer":
        """Learn merge rules from a corpus of strings."""
        if num_merges < 0:
            raise ValueError("num_merges must be non-negative")
        word_freq: Counter[str] = Counter()
        for line in corpus:
            word_freq.update(_word_tokens(line))

        # Represent each word as a tuple of symbols ending in the EOW marker.
        splits: dict[str, list[str]] = {
            word: list(word[:-1]) + [word[-1] + _EOW] for word in word_freq
        }
        # Base vocabulary: every seen character in BOTH its mid-word and
        # end-of-word form, so any recombination of corpus characters stays
        # encodable (e.g. "0" seen only word-finally must still tokenize
        # inside "007").
        characters = {c for word in word_freq for c in word}
        initial_symbols = sorted(characters | {c + _EOW for c in characters})

        merges: list[tuple[str, str]] = []
        for _ in range(num_merges):
            pair_freq: Counter[tuple[str, str]] = Counter()
            for word, freq in word_freq.items():
                symbols = splits[word]
                for a, b in zip(symbols, symbols[1:]):
                    pair_freq[(a, b)] += freq
            if not pair_freq:
                break
            # Deterministic: highest frequency, then lexicographic.
            best = max(pair_freq.items(), key=lambda kv: (kv[1], kv[0][0], kv[0][1]))
            pair, freq = best
            if freq < 2:
                break
            merges.append(pair)
            merged = pair[0] + pair[1]
            for word in splits:
                splits[word] = self._apply_merge(splits[word], pair, merged)

        self.merges = merges
        self._merge_ranks = {pair: i for i, pair in enumerate(merges)}
        vocab = [self.PAD, self.UNK] + initial_symbols + [a + b for a, b in merges]
        self.id_to_token = vocab
        self.token_to_id = {tok: i for i, tok in enumerate(vocab)}
        self._cache = {}
        return self

    @staticmethod
    def _apply_merge(symbols: list[str], pair: tuple[str, str], merged: str) -> list[str]:
        out: list[str] = []
        i = 0
        while i < len(symbols):
            if i + 1 < len(symbols) and symbols[i] == pair[0] and symbols[i + 1] == pair[1]:
                out.append(merged)
                i += 2
            else:
                out.append(symbols[i])
                i += 1
        return out

    # ------------------------------------------------------------------
    # Encoding / decoding
    # ------------------------------------------------------------------
    @property
    def vocab_size(self) -> int:
        return len(self.id_to_token)

    def _segment_word(self, word: str) -> list[str]:
        if word in self._cache:
            return self._cache[word]
        symbols = list(word[:-1]) + [word[-1] + _EOW]
        while len(symbols) > 1:
            ranked = [
                (self._merge_ranks.get((a, b), float("inf")), i)
                for i, (a, b) in enumerate(zip(symbols, symbols[1:]))
            ]
            rank, index = min(ranked)
            if rank == float("inf"):
                break
            symbols = (symbols[:index]
                       + [symbols[index] + symbols[index + 1]]
                       + symbols[index + 2:])
        self._cache[word] = symbols
        return symbols

    def tokenize(self, text: str) -> list[str]:
        """Split text into subword token strings."""
        tokens: list[str] = []
        for word in _word_tokens(text):
            tokens.extend(self._segment_word(word))
        return tokens

    def encode(self, text: str) -> list[int]:
        """Encode text into token ids (unknown symbols map to ``<unk>``)."""
        unk = self.token_to_id[self.UNK]
        return [self.token_to_id.get(tok, unk) for tok in self.tokenize(text)]

    def decode_token(self, token_id: int) -> str:
        """Decode a single token id to its surface form (EOW marker stripped)."""
        if not 0 <= token_id < self.vocab_size:
            raise IndexError(f"token id {token_id} out of range")
        return self.id_to_token[token_id].replace(_EOW, "")

    def decode(self, ids: list[int]) -> str:
        """Decode token ids back to text (words separated by spaces)."""
        pieces: list[str] = []
        current = ""
        for token_id in ids:
            token = self.id_to_token[token_id]
            if token in (self.PAD, self.UNK):
                continue
            if token.endswith(_EOW):
                current += token[: -len(_EOW)]
                pieces.append(current)
                current = ""
            else:
                current += token
        if current:
            pieces.append(current)
        return " ".join(pieces)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        payload = {"merges": self.merges, "vocab": self.id_to_token}
        atomic_write_json(path, payload)

    @classmethod
    def load(cls, path: str | Path) -> "BPETokenizer":
        payload = json.loads(Path(path).read_text())
        tokenizer = cls()
        tokenizer.merges = [tuple(pair) for pair in payload["merges"]]
        tokenizer._merge_ranks = {pair: i for i, pair in enumerate(tokenizer.merges)}
        tokenizer.id_to_token = list(payload["vocab"])
        tokenizer.token_to_id = {tok: i for i, tok in enumerate(tokenizer.id_to_token)}
        return tokenizer
