"""Tokenizer and joint text/image embedding model (ImageBind substitute)."""

from .bpe import BPETokenizer
from .corpus import build_domain_corpus
from .joint_space import JointEmbeddingModel, build_default_embedding_model
from .tokens import TokenEmbeddingTable

__all__ = [
    "BPETokenizer",
    "TokenEmbeddingTable",
    "JointEmbeddingModel",
    "build_default_embedding_model",
    "build_domain_corpus",
]
