"""Built-in domain corpus for BPE training.

ImageBind ships a pre-trained BPE vocabulary; our substitute trains real BPE
merges on a small surveillance-domain corpus assembled from the concept
ontology plus template sentences, so the tokenizer sees realistic subword
statistics (shared stems like "threat-", "steal-", "fire-").
"""

from __future__ import annotations

from ..concepts.ontology import (
    ANOMALY_CLASSES,
    NORMAL_ACTIVITIES,
    build_default_ontology,
)

__all__ = ["build_domain_corpus"]

_TEMPLATES: tuple[str, ...] = (
    "the camera shows a person {verb} near the entrance",
    "footage of {noun} in the parking lot at night",
    "a suspect was seen {verb} before fleeing the scene",
    "surveillance captured {noun} next to the register",
    "an officer observed {noun} on the platform",
    "the video contains {noun} followed by people running",
    "witnesses reported {noun} outside the store",
    "alarm triggered after {noun} in the lobby",
)

_FILLER_NOUNS: tuple[str, ...] = (
    "a crowded sidewalk", "an empty corridor", "a delivery truck",
    "a security guard", "broken glass", "a dark alley", "an atm machine",
    "a crowd of shoppers", "a stairwell", "an elevator door",
)

_FILLER_VERBS: tuple[str, ...] = (
    "running", "shouting", "hiding", "loitering", "escaping",
    "approaching", "watching", "struggling", "pushing", "threatening",
)


def build_domain_corpus() -> list[str]:
    """Return the deterministic training corpus: one string per line."""
    ontology = build_default_ontology()
    lines: list[str] = []
    lines.extend(concept.text for concept in ontology.all_concepts())
    lines.extend(name.lower() for name in ANOMALY_CLASSES)
    lines.extend(NORMAL_ACTIVITIES)
    for template in _TEMPLATES:
        if "{noun}" in template:
            for noun in _FILLER_NOUNS:
                lines.append(template.format(noun=noun))
            for concept in ontology.all_concepts()[::3]:
                lines.append(template.format(noun=concept.text))
        if "{verb}" in template:
            for verb in _FILLER_VERBS:
                lines.append(template.format(verb=verb))
    return lines
