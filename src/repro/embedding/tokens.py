"""Vocabulary token-embedding table and nearest-token search.

The joint embedding model owns a frozen, "pre-trained" embedding vector per
BPE vocabulary token.  Two consumers:

* the text encoder (token ids -> token vectors -> pooled text embedding);
* interpretable KG retrieval, which searches this table for the nearest
  tokens to an *adaptively learned* embedding and decodes them to words
  (paper Section III-E; Euclidean distance is the paper's chosen metric).
"""

from __future__ import annotations

import numpy as np

from ..utils.rng import derive_rng
from .bpe import BPETokenizer

__all__ = ["TokenEmbeddingTable"]


class TokenEmbeddingTable:
    """Frozen per-token embedding matrix with similarity search.

    Parameters
    ----------
    tokenizer:
        Trained BPE tokenizer; table rows align with its token ids.
    dim:
        Token embedding dimensionality.
    seed:
        Determinism root for the "pre-trained" vectors.
    """

    METRICS = ("euclidean", "cosine", "dot")

    def __init__(self, tokenizer: BPETokenizer, dim: int = 128, seed: int = 7):
        if tokenizer.vocab_size == 0:
            raise ValueError("tokenizer has an empty vocabulary; train it first")
        self.tokenizer = tokenizer
        self.dim = dim
        rng = derive_rng(seed, "token-table")
        table = rng.normal(0.0, 1.0, size=(tokenizer.vocab_size, dim))
        table /= np.linalg.norm(table, axis=1, keepdims=True)
        self.vectors: np.ndarray = table  # frozen; never trained

    @property
    def vocab_size(self) -> int:
        return self.vectors.shape[0]

    def lookup(self, token_ids: list[int] | np.ndarray) -> np.ndarray:
        """Rows for the given token ids, shape (len(ids), dim)."""
        ids = np.asarray(token_ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= self.vocab_size):
            raise IndexError("token id out of range")
        return self.vectors[ids]

    def embed_text(self, text: str) -> np.ndarray:
        """Mean-pooled token embedding of a text phrase."""
        ids = self.tokenizer.encode(text)
        if not ids:
            return np.zeros(self.dim)
        return self.lookup(ids).mean(axis=0)

    # ------------------------------------------------------------------
    # Nearest-token retrieval (paper Section III-E)
    # ------------------------------------------------------------------
    def scores(self, query: np.ndarray, metric: str = "euclidean") -> np.ndarray:
        """Similarity score of ``query`` against every vocabulary token.

        Higher is more similar for all metrics (Euclidean distances are
        negated).
        """
        if metric not in self.METRICS:
            raise ValueError(f"unknown metric {metric!r}; choose from {self.METRICS}")
        if query.shape != (self.dim,):
            raise ValueError(f"query must have shape ({self.dim},), got {query.shape}")
        if metric == "euclidean":
            return -np.linalg.norm(self.vectors - query[None, :], axis=1)
        if metric == "cosine":
            norms = np.linalg.norm(self.vectors, axis=1) * max(np.linalg.norm(query), 1e-12)
            return (self.vectors @ query) / np.maximum(norms, 1e-12)
        return self.vectors @ query  # dot

    def nearest_tokens(self, query: np.ndarray, k: int = 5,
                       metric: str = "euclidean",
                       skip_special: bool = True) -> list[tuple[int, str, float]]:
        """Top-k nearest tokens: (token id, decoded word piece, score)."""
        sims = self.scores(query, metric=metric)
        order = np.argsort(-sims)
        results: list[tuple[int, str, float]] = []
        for token_id in order:
            token = self.tokenizer.id_to_token[token_id]
            if skip_special and token in (self.tokenizer.PAD, self.tokenizer.UNK):
                continue
            results.append((int(token_id), self.tokenizer.decode_token(int(token_id)),
                            float(sims[token_id])))
            if len(results) == k:
                break
        return results
