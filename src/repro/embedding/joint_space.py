"""The large joint embedding model (ImageBind substitute).

ImageBind binds images and text into one embedding space.  The reproduction
needs exactly two of its properties:

1. **Alignment** — a video frame showing anomaly-class evidence must embed
   near the text embeddings of that class's concepts.  We guarantee this by
   construction: synthetic frames are *rendered* from concept-space semantic
   vectors by a fixed full-rank linear map, and the image encoder inverts
   that map (plus noise).  The text encoder is fitted once by ridge
   regression so that encoding a concept phrase lands on its ontology
   vector.
2. **Differentiability through tokens** — the text path must be a
   differentiable function of token embeddings, because continuous KG
   adaptive learning backpropagates into the KG token embeddings *through*
   the frozen text encoder.  :meth:`encode_token_tensor` provides that path
   on autodiff tensors.

The model is deterministic in its seed and frozen after construction, mirror
ing the paper's frozen "Large Joint Embedding Model" (Fig. 2).
"""

from __future__ import annotations

import numpy as np

from ..concepts.ontology import ConceptOntology, build_default_ontology
from ..concepts.vectors import ConceptSpace
from ..nn.tensor import Tensor, pad_gemm_rows
from ..utils.rng import derive_rng
from .bpe import BPETokenizer
from .corpus import build_domain_corpus
from .tokens import TokenEmbeddingTable

__all__ = ["JointEmbeddingModel", "build_default_embedding_model"]


class JointEmbeddingModel:
    """Frozen joint text/image embedding model over the concept space.

    Parameters
    ----------
    tokenizer / token_table:
        Trained BPE tokenizer and its frozen vocabulary embedding table.
    concept_space:
        The latent semantic geometry (class anchors, concept vectors).
    frame_dim:
        Dimensionality of raw synthetic frame features ("pixels").
    ridge:
        Ridge-regression regularizer used when fitting the text projection.
    """

    def __init__(self, tokenizer: BPETokenizer, token_table: TokenEmbeddingTable,
                 concept_space: ConceptSpace, frame_dim: int = 192,
                 seed: int = 7, ridge: float = 1e-3):
        self.tokenizer = tokenizer
        self.token_table = token_table
        self.concept_space = concept_space
        self.frame_dim = frame_dim
        self.joint_dim = concept_space.dim
        self.token_dim = token_table.dim
        self.seed = seed

        # --- image path: fixed rendering matrix and its pseudo-inverse ---
        rng = derive_rng(seed, "render")
        self._render = rng.normal(0.0, 1.0 / np.sqrt(self.joint_dim),
                                  size=(frame_dim, self.joint_dim))
        self._image_projection = np.linalg.pinv(self._render)
        # Contiguous transpose for encode_image: a GEMM against a
        # transposed view takes a different BLAS path whose tiny-M kernels
        # are not row-stable, which would break micro-batch score parity.
        self._image_projection_t = np.ascontiguousarray(
            self._image_projection.T)

        # --- text path: ridge-fit pooled-token -> concept-vector map -----
        vocabulary = concept_space.ontology.vocabulary()
        pooled = np.stack([token_table.embed_text(text) for text in vocabulary])
        targets = concept_space.matrix(vocabulary)
        gram = pooled.T @ pooled + ridge * np.eye(self.token_dim)
        self._text_projection = np.linalg.solve(gram, pooled.T @ targets)
        # Fit quality (diagnostic, exposed for tests): mean cosine between
        # encoded phrases and their ontology vectors.
        encoded = pooled @ self._text_projection
        cos = np.sum(encoded * targets, axis=1) / np.maximum(
            np.linalg.norm(encoded, axis=1) * np.linalg.norm(targets, axis=1), 1e-12)
        self.text_fit_cosine = float(np.mean(cos))

    # ------------------------------------------------------------------
    # Image path
    # ------------------------------------------------------------------
    def render_semantic(self, semantic: np.ndarray,
                        rng: np.random.Generator | None = None,
                        noise: float = 0.0) -> np.ndarray:
        """Render a joint-space semantic vector into a raw frame feature.

        This is the data generator's "camera": the dataset synthesizes
        frames by rendering concept mixtures.  ``noise`` adds sensor noise
        in frame space.
        """
        if semantic.shape != (self.joint_dim,):
            raise ValueError(f"semantic must have shape ({self.joint_dim},)")
        frame = self._render @ semantic
        if noise > 0:
            if rng is None:
                raise ValueError("rng required when noise > 0")
            frame = frame + rng.normal(0.0, noise, size=self.frame_dim)
        return frame

    def render_semantics(self, semantics: np.ndarray) -> np.ndarray:
        """Render a batch of semantic vectors, noiselessly.

        Row ``i`` is bit-identical to ``render_semantic(semantics[i])``:
        the render stays a per-row GEMV (a batched GEMM accumulates in a
        different order and would change low bits, breaking the stream
        generators' bit-exactness guarantee).  Callers add sensor noise
        themselves so they control the RNG draw order.
        """
        if semantics.ndim != 2 or semantics.shape[1] != self.joint_dim:
            raise ValueError(
                f"semantics must have shape (n, {self.joint_dim})")
        frames = np.empty((semantics.shape[0], self.frame_dim))
        for index in range(semantics.shape[0]):
            frames[index] = self._render @ semantics[index]
        return frames

    def encode_image(self, frame: np.ndarray) -> np.ndarray:
        """Embed raw frame features into the joint space (E_I in the paper).

        Tiny batches are padded up to the row-stable GEMM floor so a
        frame's encoding is bit-identical whether it is encoded alone or
        inside a coalesced serving micro-batch.
        """
        frame = np.asarray(frame, dtype=np.float64)
        if frame.shape[-1] != self.frame_dim:
            raise ValueError(f"frame feature dim must be {self.frame_dim}")
        if frame.ndim >= 2:
            # Always flatten to one 2-D GEMM: a stacked (..., B, T) matmul
            # would run per-batch tiny-M kernels — the unstable regime the
            # row floor exists to avoid — and pad tiny batches up to it.
            lead = frame.shape[:-1]
            flat = frame.reshape(-1, self.frame_dim)
            flat, rows = pad_gemm_rows(flat)
            out = flat @ self._image_projection_t
            return out[:rows].reshape(lead + (self.joint_dim,))
        return frame @ self._image_projection_t

    # ------------------------------------------------------------------
    # Text path
    # ------------------------------------------------------------------
    def encode_text(self, text: str) -> np.ndarray:
        """Embed a text phrase into the joint space (frozen, non-diff path)."""
        pooled = self.token_table.embed_text(text)
        return pooled @ self._text_projection

    def encode_token_vectors(self, token_vectors: np.ndarray) -> np.ndarray:
        """Embed explicit token vectors (n_tokens, token_dim) -> joint vector."""
        if token_vectors.ndim != 2 or token_vectors.shape[1] != self.token_dim:
            raise ValueError(f"expected (n, {self.token_dim}) token vectors")
        return token_vectors.mean(axis=0) @ self._text_projection

    def encode_token_tensor(self, token_vectors: Tensor) -> Tensor:
        """Differentiable text path for continuous KG adaptation.

        ``token_vectors`` is an autodiff tensor of shape
        ``(n_tokens, token_dim)`` — typically a KG node's learnable token
        embeddings.  The projection itself stays frozen (a constant on the
        tape), so gradients flow only into the token vectors.
        """
        pooled = token_vectors.mean(axis=0)
        return pooled @ Tensor(self._text_projection)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def alignment(self, frame: np.ndarray, text: str) -> float:
        """Cosine similarity between an encoded frame and an encoded phrase."""
        image_vec = self.encode_image(frame)
        text_vec = self.encode_text(text)
        denom = max(np.linalg.norm(image_vec) * np.linalg.norm(text_vec), 1e-12)
        return float(image_vec @ text_vec / denom)


def build_default_embedding_model(seed: int = 7, joint_dim: int = 64,
                                  token_dim: int = 128, frame_dim: int = 192,
                                  num_merges: int = 300,
                                  ontology: ConceptOntology | None = None,
                                  ) -> JointEmbeddingModel:
    """Assemble the full default stack: ontology, BPE, token table, model."""
    ontology = ontology or build_default_ontology()
    tokenizer = BPETokenizer().train(build_domain_corpus(), num_merges=num_merges)
    token_table = TokenEmbeddingTable(tokenizer, dim=token_dim, seed=seed)
    space = ConceptSpace(ontology, dim=joint_dim, seed=seed)
    return JointEmbeddingModel(tokenizer, token_table, space,
                               frame_dim=frame_dim, seed=seed)
