"""Serving metrics: counters, gauges, latency histograms, one registry.

Every serving layer — the in-process :class:`~repro.serving.DeploymentFleet`,
the multi-process :class:`~repro.serving.ShardedFleet`, the asyncio
:class:`~repro.gateway.GatewayServer`, and the benchmark harnesses — needs
the same three primitives: monotonic counters, point-in-time gauges, and
latency distributions summarized as p50/p95/p99.  They live here once
(stdlib + numpy only), at the top of the dependency graph, so the
:class:`~repro.runtime.ServingEngine` can instrument the canonical round
loop without any layer importing the gateway.  :class:`LatencyHistogram`
keeps a bounded reservoir of raw samples (uniform reservoir sampling once
full), which is exact for benchmark-sized runs and O(1) memory under
sustained load.

This module was promoted from ``repro.gateway.metrics``, which remains as
a deprecation re-export shim.

:func:`percentile` is the shared guard around ``np.percentile``: an
empty sample list raises a :class:`ValueError` that names the phase
being summarized instead of numpy's bare ``IndexError``.
"""

from __future__ import annotations

import random
import threading

import numpy as np

__all__ = ["percentile", "Counter", "Gauge", "LatencyHistogram",
           "MetricsRegistry"]


def percentile(samples, q: float, phase: str = "latency") -> float:
    """``np.percentile`` with a clear error when there is nothing to
    summarize; ``phase`` names the benchmark phase in the message."""
    samples = np.asarray(samples, dtype=np.float64)
    if samples.size == 0:
        raise ValueError(
            f"no latency samples recorded for benchmark phase {phase!r}; "
            "cannot compute percentiles over an empty sample set")
    return float(np.percentile(samples, q))


class Counter:
    """A monotonically increasing count (thread-safe)."""

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A point-in-time value (thread-safe set/add)."""

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += float(delta)

    @property
    def value(self) -> float:
        return self._value


class LatencyHistogram:
    """Latency distribution summarized as count/mean/p50/p95/p99.

    Samples are seconds in, milliseconds out (the convention of every
    ``BENCH_*.json`` in this repo).  A bounded reservoir keeps memory
    constant under sustained serving load; up to ``max_samples``
    observations the summary is exact.  ``count`` is always the true
    number of observations (never the reservoir size); ``summary()``
    reports both, plus ``sampled``, so percentile uncertainty is
    assessable when the reservoir has saturated.

    Thread safety: every mutation and read of ``_samples``/``_seen``
    happens under ``_lock``, including the reservoir's ``randrange``
    draw — ``random.Random`` instances are not safe for concurrent
    mutation, so the RNG must never be touched outside the lock.
    """

    def __init__(self, max_samples: int = 65536, seed: int = 0):
        if max_samples < 1:
            raise ValueError("max_samples must be >= 1")
        self.max_samples = max_samples
        self._samples: list[float] = []
        self._seen = 0
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        with self._lock:
            self._seen += 1
            if len(self._samples) < self.max_samples:
                self._samples.append(float(seconds))
            else:
                slot = self._rng.randrange(self._seen)
                if slot < self.max_samples:
                    self._samples[slot] = float(seconds)

    @property
    def count(self) -> int:
        with self._lock:
            return self._seen

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other`` into this histogram.

        True counts add exactly; samples pool up to this reservoir's
        bound, with uniform random replacement past it (an approximate
        merge — exact weighted reservoir merging is not worth the
        machinery for summary percentiles).  This is how parallel
        load-generator clients aggregate without under-reporting
        ``count`` once a per-client reservoir has saturated.
        """
        with other._lock:
            samples = list(other._samples)
            seen = other._seen
        with self._lock:
            self._seen += seen
            for value in samples:
                if len(self._samples) < self.max_samples:
                    self._samples.append(value)
                else:
                    slot = self._rng.randrange(len(self._samples) + 1)
                    if slot < self.max_samples:
                        self._samples[slot] = value

    def summary(self, phase: str = "latency") -> dict:
        """``{count, sampled, mean_ms, p50_ms, p95_ms, p99_ms}``:
        ``count`` is true observations, ``sampled`` the reservoir size
        the percentiles were computed from.  An empty histogram
        summarizes to ``{"count": 0}`` rather than raising, so the
        ``stats`` op stays serveable on an idle gateway."""
        with self._lock:
            samples = list(self._samples)
            seen = self._seen
        if not samples:
            return {"count": 0}
        return {
            "count": seen,
            "sampled": len(samples),
            "mean_ms": float(np.mean(samples)) * 1e3,
            "p50_ms": percentile(samples, 50, phase) * 1e3,
            "p95_ms": percentile(samples, 95, phase) * 1e3,
            "p99_ms": percentile(samples, 99, phase) * 1e3,
        }


class MetricsRegistry:
    """Named metrics, created on first touch, dumped as one dict.

    ``counter``/``gauge``/``histogram`` are get-or-create (the same name
    always returns the same instance; a name cannot change kind), so
    instrumentation points never need registration order.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, object] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, kind: type, factory):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise TypeError(
                    f"metric {name!r} is a {type(metric).__name__}, "
                    f"not a {kind.__name__}")
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, Gauge)

    def histogram(self, name: str, max_samples: int = 65536) -> LatencyHistogram:
        return self._get(name, LatencyHistogram,
                         lambda: LatencyHistogram(max_samples))

    def to_dict(self) -> dict:
        """JSON-ready snapshot: ``{counters: {...}, gauges: {...},
        histograms: {...}}`` (what the gateway's ``stats`` op returns)."""
        with self._lock:
            items = list(self._metrics.items())
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for name, metric in items:
            if isinstance(metric, Counter):
                out["counters"][name] = metric.value
            elif isinstance(metric, Gauge):
                out["gauges"][name] = metric.value
            else:
                out["histograms"][name] = metric.summary(phase=name)
        return out
