"""Predefined prompt formats for reasoning-KG generation.

The paper drives GPT-4 with "predefined prompt formats" for each step of the
expansion loop (initial nodes, next nodes, edges, error correction).  The
oracle is offline, but we keep the prompt layer explicit: every oracle call
renders a real prompt string, so the generation framework's interface is
faithful and a future swap-in of an actual LLM only has to parse/produce the
same shapes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "PromptTemplate",
    "INITIAL_NODES_PROMPT",
    "NEXT_NODES_PROMPT",
    "EDGES_PROMPT",
    "CORRECTION_PROMPT",
]


@dataclass(frozen=True)
class PromptTemplate:
    """A named prompt template with ``str.format`` placeholders."""

    name: str
    template: str

    def render(self, **kwargs) -> str:
        return self.template.format(**kwargs)


INITIAL_NODES_PROMPT = PromptTemplate(
    name="initial_nodes",
    template=(
        "Mission: detect '{mission}' in surveillance video.\n"
        "List {count} key visual indicators (short phrases) that form the "
        "first reasoning level for recognizing this anomaly."
    ),
)

NEXT_NODES_PROMPT = PromptTemplate(
    name="next_nodes",
    template=(
        "Mission: detect '{mission}'.\n"
        "Current level-{level} concepts: {concepts}.\n"
        "Infer {count} more specific concepts for level {next_level} that can "
        "be deduced from the current concepts."
    ),
)

EDGES_PROMPT = PromptTemplate(
    name="edges",
    template=(
        "Mission: detect '{mission}'.\n"
        "Connect level-{level} concepts {sources} to level-{next_level} "
        "concepts {targets}. Only propose edges from level {level} to level "
        "{next_level}."
    ),
)

CORRECTION_PROMPT = PromptTemplate(
    name="correction",
    template=(
        "The proposed level-{level} expansion contains errors:\n{errors}\n"
        "Fix the duplicated concepts and invalid edges, keeping the "
        "hierarchical structure (edges only from level {prev_level} to "
        "level {level})."
    ),
)
