"""SyntheticLLM: the offline GPT-4 + ConceptNet substitute.

The oracle answers the three prompt types of the paper's KG generation
framework (Fig. 3): initial reasoning nodes, next-level reasoning nodes, and
reasoning edges — by walking the built-in concept ontology.  Crucially it
also *injects* the two LLM failure modes the paper's error-correction loop
exists to handle:

* **duplicated concepts** — re-proposing a concept already used at an
  earlier level;
* **invalid edges** — proposing an edge whose source is not at the previous
  level.

Error injection is stochastic with a configurable rate, and corrections can
themselves introduce new errors (``correction_error_rate``), which is why
the framework bounds its correction loop and prunes as a fallback — exactly
the behaviour described in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..concepts.ontology import ConceptOntology
from ..utils.rng import derive_rng
from .prompts import (
    CORRECTION_PROMPT,
    EDGES_PROMPT,
    INITIAL_NODES_PROMPT,
    NEXT_NODES_PROMPT,
)

__all__ = ["SyntheticLLM", "EdgeProposal", "LevelProposal"]


@dataclass(frozen=True)
class EdgeProposal:
    """A proposed edge between concept texts."""

    source: str
    target: str


@dataclass
class LevelProposal:
    """The oracle's answer for one expansion level."""

    concepts: list[str]
    edges: list[EdgeProposal] = field(default_factory=list)


class SyntheticLLM:
    """Deterministic-given-seed oracle over the concept ontology.

    Parameters
    ----------
    ontology:
        Concept source.
    seed:
        Root seed for all sampling and error injection.
    error_rate:
        Probability that a generation step injects an error of each kind.
    correction_error_rate:
        Probability that a correction introduces a fresh error (the paper:
        "the LLM might introduce new errors during correction").
    """

    def __init__(self, ontology: ConceptOntology, seed: int = 7,
                 error_rate: float = 0.15, correction_error_rate: float = 0.1):
        self.ontology = ontology
        self.seed = seed
        self.error_rate = error_rate
        self.correction_error_rate = correction_error_rate
        self._call_count = 0
        self.prompt_log: list[str] = []

    def _rng(self, *namespace) -> np.random.Generator:
        self._call_count += 1
        return derive_rng(self.seed, "oracle", self._call_count, *namespace)

    # ------------------------------------------------------------------
    # Node generation
    # ------------------------------------------------------------------
    def generate_initial_nodes(self, mission: str, count: int = 4) -> list[str]:
        """Answer the initial-reasoning-nodes prompt with depth-1 indicators."""
        self.prompt_log.append(INITIAL_NODES_PROMPT.render(mission=mission, count=count))
        rng = self._rng("initial", mission)
        pool = [c.text for c in self.ontology.concepts_for_class(mission, depth=1)]
        if not pool:
            raise ValueError(f"ontology has no depth-1 concepts for {mission!r}")
        k = min(count, len(pool))
        picked = rng.choice(len(pool), size=k, replace=False)
        return [pool[i] for i in sorted(picked)]

    def generate_next_nodes(self, mission: str, current: list[str], level: int,
                            count: int = 5,
                            forbidden: set[str] | None = None) -> list[str]:
        """Answer the next-nodes prompt with deeper concepts.

        With probability ``error_rate`` one proposal duplicates an existing
        concept (an LLM lapse the framework must catch).
        """
        self.prompt_log.append(NEXT_NODES_PROMPT.render(
            mission=mission, level=level, next_level=level + 1,
            concepts=", ".join(current), count=count))
        rng = self._rng("next", mission, level)
        forbidden = forbidden or set()
        depth = min(level + 1, self.ontology.max_depth(mission))
        pool = [c.text for c in self.ontology.concepts_for_class(mission, depth=depth)
                if c.text not in forbidden]
        # Mix in ontology neighbours of current concepts for variety.
        for concept in current:
            for neighbour in self.ontology.related(concept):
                if neighbour not in forbidden and neighbour not in pool:
                    pool.append(neighbour)
        if not pool:
            # Fall back to any unused concept of the class.
            pool = [c.text for c in self.ontology.concepts_for_class(mission)
                    if c.text not in forbidden]
        k = min(count, len(pool))
        picked = rng.choice(len(pool), size=k, replace=False)
        proposals = [pool[i] for i in sorted(picked)]
        if forbidden and rng.random() < self.error_rate:
            # Inject a duplicated concept.
            dup = sorted(forbidden)[int(rng.integers(len(forbidden)))]
            proposals[int(rng.integers(len(proposals)))] = dup
        return proposals

    # ------------------------------------------------------------------
    # Edge generation
    # ------------------------------------------------------------------
    def generate_edges(self, mission: str, level: int, sources: list[str],
                       targets: list[str],
                       older_concepts: list[str] | None = None) -> list[EdgeProposal]:
        """Answer the edges prompt; every target gets 1-3 source parents.

        With probability ``error_rate`` one edge is invalid: its source is a
        concept from an *older* level (violating the i -> i+1 rule).
        """
        self.prompt_log.append(EDGES_PROMPT.render(
            mission=mission, level=level, next_level=level + 1,
            sources=", ".join(sources), targets=", ".join(targets)))
        rng = self._rng("edges", mission, level)
        if not sources:
            raise ValueError("edge generation requires at least one source")
        edges: list[EdgeProposal] = []
        for target in targets:
            # Prefer ontology-related sources, fall back to sampling.
            related = [s for s in sources if target in self.ontology.related(s)]
            fanin = int(rng.integers(1, min(3, len(sources)) + 1))
            chosen = set(related[:fanin])
            while len(chosen) < fanin:
                chosen.add(sources[int(rng.integers(len(sources)))])
            edges.extend(EdgeProposal(source=s, target=target) for s in sorted(chosen))
        if older_concepts and rng.random() < self.error_rate:
            bad_source = older_concepts[int(rng.integers(len(older_concepts)))]
            bad_target = targets[int(rng.integers(len(targets)))]
            edges.append(EdgeProposal(source=bad_source, target=bad_target))
        return edges

    # ------------------------------------------------------------------
    # Error correction
    # ------------------------------------------------------------------
    def correct_duplicate(self, mission: str, duplicate: str,
                          forbidden: set[str]) -> str | None:
        """Propose a replacement concept for a duplicated one.

        Returns None when the oracle "fails" — either no unused concept
        remains or it stochastically repeats a forbidden concept (a fresh
        error), in which case the framework's bounded loop will retry or
        prune.
        """
        self.prompt_log.append(CORRECTION_PROMPT.render(
            level="?", prev_level="?", errors=f"duplicated concept: {duplicate}"))
        rng = self._rng("correct-dup", duplicate)
        pool = [c.text for c in self.ontology.concepts_for_class(mission)
                if c.text not in forbidden]
        if not pool:
            return None
        replacement = pool[int(rng.integers(len(pool)))]
        if rng.random() < self.correction_error_rate and forbidden:
            return sorted(forbidden)[int(rng.integers(len(forbidden)))]
        return replacement

    def correct_edge(self, level: int, target: str,
                     valid_sources: list[str],
                     older_concepts: list[str] | None = None) -> EdgeProposal | None:
        """Rewire an invalid edge to a valid previous-level source."""
        self.prompt_log.append(CORRECTION_PROMPT.render(
            level=level + 1, prev_level=level,
            errors=f"invalid edge into: {target}"))
        rng = self._rng("correct-edge", target, level)
        if not valid_sources:
            return None
        source = valid_sources[int(rng.integers(len(valid_sources)))]
        if older_concepts and rng.random() < self.correction_error_rate:
            source = older_concepts[int(rng.integers(len(older_concepts)))]
        return EdgeProposal(source=source, target=target)
