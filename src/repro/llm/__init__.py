"""SyntheticLLM oracle and prompt schema (GPT-4 + ConceptNet substitute)."""

from .oracle import EdgeProposal, LevelProposal, SyntheticLLM
from .prompts import (
    CORRECTION_PROMPT,
    EDGES_PROMPT,
    INITIAL_NODES_PROMPT,
    NEXT_NODES_PROMPT,
    PromptTemplate,
)

__all__ = [
    "SyntheticLLM",
    "EdgeProposal",
    "LevelProposal",
    "PromptTemplate",
    "INITIAL_NODES_PROMPT",
    "NEXT_NODES_PROMPT",
    "EDGES_PROMPT",
    "CORRECTION_PROMPT",
]
