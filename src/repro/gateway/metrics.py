"""Deprecated alias for :mod:`repro.metrics`.

The serving metrics primitives were promoted out of the gateway (they
instrument every serving layer via the :class:`~repro.runtime.ServingEngine`,
and ``repro.serving`` importing ``repro.gateway`` was a layering
inversion).  This shim keeps old imports working; new code should import
:mod:`repro.metrics` directly.
"""

from __future__ import annotations

import warnings

from ..metrics import (  # noqa: F401 — re-exported for compatibility
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    percentile,
)

__all__ = ["percentile", "Counter", "Gauge", "LatencyHistogram",
           "MetricsRegistry"]

warnings.warn(
    "repro.gateway.metrics is deprecated; import repro.metrics instead",
    DeprecationWarning, stacklevel=2)
