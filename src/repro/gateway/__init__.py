"""Network serving gateway: a deployment fleet behind a TCP socket.

PRs 1–3 built the in-process serving stack — ``Deployment`` →
``DeploymentFleet`` (micro-batched) → ``ShardedFleet`` (multi-process) —
but every deployment was still driven by the caller's own loop.  This
package is the ingestion front door a production stack hangs off it,
stdlib + numpy only:

:mod:`~repro.gateway.protocol`
    Versioned wire format — length-prefixed JSON frames (protocol v1)
    and binary frames with raw float64 window/score buffers (protocol
    v2, negotiated at ``attach``, JSON fallback for old peers) — with
    ops for ``ingest``, ``scores``, ``attach``/``detach``, ``stats``
    and ``shutdown``, plus typed error frames.
:class:`GatewayServer`
    Asyncio TCP server fronting a :class:`~repro.serving.DeploymentFleet`
    or :class:`~repro.serving.ShardedFleet`: concurrently arriving
    windows coalesce into micro-batched fleet rounds (scores
    bit-identical to a direct ``fleet.step()``), bounded per-stream
    queues reject overload with ``backpressure`` frames, and shutdown
    drains gracefully.
:class:`GatewayClient` / :class:`LoadGenerator`
    Blocking client SDK and the multi-connection open-loop load
    generator behind ``repro loadgen``.
:class:`MetricsRegistry`
    Re-exported from :mod:`repro.metrics` (promoted out of the gateway):
    counters, gauges and p50/p95/p99 latency histograms shared by every
    serving layer and surfaced through the ``stats`` op.
:func:`run_gateway_benchmark`
    The latency/throughput curve over client-concurrency levels written
    as ``BENCH_5.json``, engine metrics included.
:func:`run_durability_benchmark`
    The WAL durability A/B profile written as ``BENCH_6.json``: the
    identical load served with and without ``wal_dir`` (see
    :mod:`repro.wal`), recording the ack-after-append fsync overhead
    and verifying the log it paid for actually recovers.
:func:`run_codec_ab_benchmark`
    The wire codec A/B profile written as ``BENCH_7.json``: the same
    parity-verified load served over JSON and over binary frames at
    small and large window batches (plus a shared-memory sharded side),
    recording the latency/throughput delta the binary codec buys.
:func:`run_pipeline_ab_benchmark`
    The pipelined-rounds A/B profile written as ``BENCH_10.json``: a
    serial/pipelined x codec x inline/sharded parity matrix, a
    rate-paced WAL A/B measuring what the async group commit buys, and
    a crash-recovery drill against a pipelined engine.

The server itself no longer owns a round loop: requests feed the fleet's
:class:`repro.runtime.ServingEngine` admission queues, and a pluggable
:class:`~repro.runtime.SchedulingPolicy` (``policy="fair"|"greedy"|
"priority"``) composes the rounds.
"""

from .client import (
    DEFAULT_CODEC_AB_BENCH_PATH,
    DEFAULT_DURABILITY_BENCH_PATH,
    DEFAULT_GATEWAY_BENCH_PATH,
    DEFAULT_PIPELINE_AB_BENCH_PATH,
    GatewayClient,
    GatewayError,
    LoadGenConfig,
    LoadGenerator,
    LoadGenResult,
    format_codec_ab_benchmark,
    format_durability_benchmark,
    format_gateway_benchmark,
    format_pipeline_ab_benchmark,
    run_codec_ab_benchmark,
    run_durability_benchmark,
    run_gateway_benchmark,
    run_pipeline_ab_benchmark,
)
# Compatibility re-exports: the metrics primitives were promoted to
# repro.metrics (repro.gateway.metrics remains as a deprecation shim).
from ..metrics import (
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    percentile,
)
from .protocol import (
    CODECS,
    ERROR_CODES,
    MAX_FRAME_BYTES,
    OPS,
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    FrameError,
    RequestError,
)
from .server import (
    DEFAULT_MAX_QUEUE_DEPTH,
    GatewayHandle,
    GatewayServer,
    serve_in_thread,
)

__all__ = [
    "PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
    "CODECS",
    "MAX_FRAME_BYTES",
    "OPS",
    "ERROR_CODES",
    "FrameError",
    "RequestError",
    "GatewayServer",
    "GatewayHandle",
    "serve_in_thread",
    "DEFAULT_MAX_QUEUE_DEPTH",
    "GatewayClient",
    "GatewayError",
    "LoadGenConfig",
    "LoadGenerator",
    "LoadGenResult",
    "run_gateway_benchmark",
    "format_gateway_benchmark",
    "DEFAULT_GATEWAY_BENCH_PATH",
    "run_durability_benchmark",
    "format_durability_benchmark",
    "DEFAULT_DURABILITY_BENCH_PATH",
    "run_codec_ab_benchmark",
    "format_codec_ab_benchmark",
    "DEFAULT_CODEC_AB_BENCH_PATH",
    "run_pipeline_ab_benchmark",
    "format_pipeline_ab_benchmark",
    "DEFAULT_PIPELINE_AB_BENCH_PATH",
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "percentile",
]
