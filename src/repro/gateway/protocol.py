"""The gateway wire format: versioned length-prefixed JSON frames.

Every message — request or response, either direction — is one *frame*:
a 4-byte big-endian unsigned length prefix followed by exactly that many
bytes of UTF-8 JSON encoding a single object.  Length-prefixing makes
framing trivial for both the asyncio server and the blocking socket
client, and JSON keeps the payload debuggable with ``nc``-grade tooling.

Requests carry ``{"v": 1, "op": ..., "id": ...}`` plus op-specific
fields; responses echo the request ``id`` with ``{"ok": true, ...}`` or
a typed error ``{"ok": false, "error": {"code": ..., "message": ...}}``.
The ops and error codes are enumerated below; anything the peer cannot
parse at the framing layer raises :class:`FrameError` (the server
answers with a ``bad_frame`` error and closes the connection, since a
corrupt stream cannot be re-synchronized).
"""

from __future__ import annotations

import json
import socket
import struct

__all__ = [
    "PROTOCOL_VERSION", "MAX_FRAME_BYTES", "OPS", "ERROR_CODES",
    "FrameError", "RequestError",
    "encode_frame", "decode_body",
    "read_frame", "write_frame", "recv_frame", "send_frame",
    "request_frame", "ok_frame", "error_frame", "validate_request",
]

PROTOCOL_VERSION = 1

#: Upper bound on one frame's JSON body.  Generous for arrival batches
#: (a window is T x frame_dim float literals) while refusing to buffer
#: an unbounded stream from a confused or hostile peer.
MAX_FRAME_BYTES = 32 * 1024 * 1024

_HEADER = struct.Struct(">I")

#: Operations the gateway understands.
OPS = ("ingest", "scores", "attach", "detach", "stats", "shutdown")

#: Typed error codes carried in ``{"error": {"code": ...}}`` frames.
ERROR_CODES = (
    "bad_frame",         # unframeable bytes: truncated/oversized/non-JSON
    "bad_request",       # well-framed but missing/invalid fields
    "version_mismatch",  # request "v" != PROTOCOL_VERSION
    "unknown_op",        # "op" not in OPS
    "unknown_stream",    # stream name not attached to the fleet
    "not_attached",      # ingest/scores before attach on this connection
    "backpressure",      # admission control: per-stream queue is full
    "expired",           # request missed its deadline_ms while queued
    "shutting_down",     # server is draining; no new work accepted
    "internal",          # serving round failed server-side
)


class FrameError(Exception):
    """The byte stream does not contain a well-formed frame."""


class RequestError(Exception):
    """A well-framed request that cannot be served; carries a typed code."""

    def __init__(self, code: str, message: str):
        assert code in ERROR_CODES, code
        super().__init__(message)
        self.code = code
        self.message = message


# ---------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------
def encode_frame(payload: dict) -> bytes:
    """Serialize one message to its on-wire bytes."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(f"frame body of {len(body)} bytes exceeds the "
                         f"{MAX_FRAME_BYTES}-byte limit")
    return _HEADER.pack(len(body)) + body


def decode_body(body: bytes) -> dict:
    """Parse a frame body; :class:`FrameError` on anything but one JSON
    object."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"malformed JSON frame body: {exc}") from None
    if not isinstance(payload, dict):
        raise FrameError(
            f"frame body must be a JSON object, got {type(payload).__name__}")
    return payload


def _check_length(length: int, max_bytes: int) -> None:
    if length == 0:
        raise FrameError("zero-length frame")
    if length > max_bytes:
        raise FrameError(f"frame of {length} bytes exceeds the "
                         f"{max_bytes}-byte limit")


async def read_frame(reader, max_bytes: int = MAX_FRAME_BYTES) -> dict | None:
    """Read one frame from an asyncio stream.

    Returns ``None`` on a clean EOF at a frame boundary; raises
    :class:`FrameError` on a truncated or malformed frame.
    """
    header = await reader.read(_HEADER.size)
    if not header:
        return None
    while len(header) < _HEADER.size:
        more = await reader.read(_HEADER.size - len(header))
        if not more:
            raise FrameError("truncated frame header")
        header += more
    (length,) = _HEADER.unpack(header)
    _check_length(length, max_bytes)
    try:
        body = await reader.readexactly(length)
    except Exception:  # IncompleteReadError on EOF mid-body
        raise FrameError("truncated frame body") from None
    return decode_body(body)


async def write_frame(writer, payload: dict) -> None:
    """Write one frame to an asyncio stream and flush it."""
    writer.write(encode_frame(payload))
    await writer.drain()


def _recv_exactly(sock: socket.socket, count: int) -> bytes | None:
    """Blocking read of exactly ``count`` bytes; ``None`` on immediate
    EOF, :class:`FrameError` on EOF mid-read."""
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if not chunks:
                return None
            raise FrameError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket,
               max_bytes: int = MAX_FRAME_BYTES) -> dict | None:
    """Blocking-socket twin of :func:`read_frame`."""
    header = _recv_exactly(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    _check_length(length, max_bytes)
    body = _recv_exactly(sock, length)
    if body is None:
        raise FrameError("truncated frame body")
    return decode_body(body)


def send_frame(sock: socket.socket, payload: dict) -> None:
    """Blocking-socket twin of :func:`write_frame`."""
    sock.sendall(encode_frame(payload))


# ---------------------------------------------------------------------
# Message constructors / validation
# ---------------------------------------------------------------------
def request_frame(op: str, request_id: int, **fields) -> dict:
    return {"v": PROTOCOL_VERSION, "op": op, "id": request_id, **fields}


def ok_frame(request_id, **payload) -> dict:
    return {"v": PROTOCOL_VERSION, "id": request_id, "ok": True, **payload}


def error_frame(request_id, code: str, message: str) -> dict:
    assert code in ERROR_CODES, code
    return {"v": PROTOCOL_VERSION, "id": request_id, "ok": False,
            "error": {"code": code, "message": message}}


def validate_request(payload: dict) -> str:
    """Check the request envelope; returns the op.

    Raises :class:`RequestError` with a typed code on a bad version,
    missing/invalid op, or a malformed ``id`` (the id must be a JSON
    scalar so it can be echoed back verbatim).
    """
    version = payload.get("v")
    if version != PROTOCOL_VERSION:
        raise RequestError(
            "version_mismatch",
            f"protocol version {version!r} unsupported "
            f"(server speaks {PROTOCOL_VERSION})")
    request_id = payload.get("id")
    if not isinstance(request_id, (int, str, type(None))) \
            or isinstance(request_id, bool):
        raise RequestError("bad_request",
                           f"request id must be an int, string or null, "
                           f"got {type(request_id).__name__}")
    op = payload.get("op")
    if not isinstance(op, str):
        raise RequestError("bad_request", "request has no 'op' field")
    if op not in OPS:
        raise RequestError("unknown_op",
                           f"unknown op {op!r} (known: {', '.join(OPS)})")
    return op
