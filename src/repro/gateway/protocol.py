"""The gateway wire format: JSON frames and binary frames, negotiated.

Every message — request or response, either direction — is one *frame*.
Two codecs share the TCP stream and are told apart from the first bytes:

JSON (codec ``"json"``, protocol v1's only codec)
    A 4-byte big-endian unsigned length prefix followed by exactly that
    many bytes of UTF-8 JSON encoding a single object.  Debuggable with
    ``nc``-grade tooling; float windows ride as nested lists.

Binary (codec ``"binary"``, protocol v2)
    A 16-byte little-endian struct header — magic, version, op, flags,
    array count, meta length, payload length (see
    :mod:`repro.utils.binframe`) — followed by a small JSON meta section
    and the raw little-endian float64 buffers of every array field
    (``windows``, ``scores``).  No decimal repr/parse on the hot path;
    arrays decode to writable float64 ndarrays, bit-identical to what
    was sent.

The two magic bytes can never begin a JSON frame (a valid JSON length
prefix is bounded by ``MAX_FRAME_BYTES``, so its first byte is tiny),
which is what lets one connection carry both codecs frame by frame.

**Negotiation** rides the existing ``"v"`` request field: a client that
wants binary sends its (JSON) ``attach`` with ``v = 2``; a v2 server's
``attach`` response advertises ``"codecs": ["json", "binary"]`` and the
client switches its window traffic to binary frames.  A v1-only peer
instead answers ``version_mismatch``, the client re-attaches with
``v = 1``, and everything stays JSON — old peers keep working
unmodified.  Servers always answer in the codec the request arrived in,
so mixed-codec clients coexist on one server and on one connection.

Requests carry ``{"v": 1|2, "op": ..., "id": ...}`` plus op-specific
fields; responses echo the request ``id`` with ``{"ok": true, ...}`` or
a typed error ``{"ok": false, "error": {"code": ..., "message": ...}}``.
Anything the peer cannot parse at the framing layer raises
:class:`FrameError` (the server answers with a ``bad_frame`` error and
closes the connection, since a corrupt stream cannot be
re-synchronized).  The frame-size cap is enforced on *both* ends of the
pipe: readers refuse to buffer an oversized frame, and the encoders
raise :class:`FrameError` before sending one a peer would reject.
"""

from __future__ import annotations

import json
import socket
import struct

import numpy as np

from ..utils.binframe import (
    BIN_HEADER,
    BIN_MAGIC,
    BinaryFormatError,
    decode_body as _decode_binary_tail,
    encode_payload as _encode_binary,
    is_binary,
    parse_header,
)

__all__ = [
    "PROTOCOL_VERSION", "SUPPORTED_VERSIONS", "CODECS", "MAX_FRAME_BYTES",
    "OPS", "ERROR_CODES", "FLAG_RESPONSE", "CODEC_KEY",
    "FrameError", "RequestError",
    "encode_frame", "decode_body", "frame_codec",
    "read_frame", "write_frame", "recv_frame", "send_frame",
    "request_frame", "ok_frame", "error_frame", "validate_request",
]

#: v1 speaks JSON frames only; v2 adds the binary codec.  Responses echo
#: the request's version.
PROTOCOL_VERSION = 2
SUPPORTED_VERSIONS = (1, 2)

#: Wire codecs a peer may speak; see the module docstring.
CODECS = ("json", "binary")

#: Reserved response-payload key naming the codec a frame arrived in
#: (added by the readers, stripped by the encoders; never on the wire).
CODEC_KEY = "_codec"

#: Upper bound on one frame (JSON body, or binary header+meta+payload).
#: Generous for arrival batches (a window is T x frame_dim float64s)
#: while refusing to buffer an unbounded stream from a confused or
#: hostile peer.
MAX_FRAME_BYTES = 32 * 1024 * 1024

_HEADER = struct.Struct(">I")

#: Operations the gateway understands.  A binary frame's header carries
#: the op as ``index + 1`` (0 means "no op": responses).
OPS = ("ingest", "scores", "attach", "detach", "stats", "shutdown")

#: Binary header flag bits.
FLAG_RESPONSE = 0x0001

#: Typed error codes carried in ``{"error": {"code": ...}}`` frames.
ERROR_CODES = (
    "bad_frame",         # unframeable bytes: truncated/oversized/non-JSON
    "bad_request",       # well-framed but missing/invalid fields
    "version_mismatch",  # request "v" not among the peer's versions
    "unknown_op",        # "op" not in OPS
    "unknown_stream",    # stream name not attached to the fleet
    "not_attached",      # ingest/scores before attach on this connection
    "backpressure",      # admission control: per-stream queue is full
    "expired",           # request missed its deadline_ms while queued
    "durability",        # served but its WAL commit failed: NOT on disk
    "shutting_down",     # server is draining; no new work accepted
    "internal",          # serving round failed server-side
)


class FrameError(Exception):
    """The byte stream does not contain a well-formed frame."""


class RequestError(Exception):
    """A well-framed request that cannot be served; carries a typed code."""

    def __init__(self, code: str, message: str):
        assert code in ERROR_CODES, code
        super().__init__(message)
        self.code = code
        self.message = message


# ---------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------
def frame_codec(payload: dict) -> str:
    """The codec a decoded frame arrived in (``"json"`` by default)."""
    return payload.get(CODEC_KEY, "json")


def _binary_op_code(payload: dict) -> int:
    op = payload.get("op")
    return OPS.index(op) + 1 if op in OPS else 0


def encode_frame(payload: dict, codec: str = "json",
                 max_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Serialize one message to its on-wire bytes in ``codec``.

    The frame cap is enforced here, on the write side: an oversized
    message raises :class:`FrameError` *before* any byte is sent,
    instead of shipping a frame the peer will reject after buffering it.
    """
    payload = {key: value for key, value in payload.items()
               if key != CODEC_KEY}
    if codec == "binary":
        try:
            return _encode_binary(
                payload,
                version=int(payload.get("v", PROTOCOL_VERSION)),
                op=_binary_op_code(payload),
                flags=FLAG_RESPONSE if "ok" in payload else 0,
                max_bytes=max_bytes)
        except BinaryFormatError as exc:
            raise FrameError(str(exc)) from None
    if codec != "json":
        raise FrameError(f"unknown codec {codec!r} "
                         f"(known: {', '.join(CODECS)})")
    body = json.dumps(_jsonable(payload), separators=(",", ":"),
                      ).encode("utf-8")
    if len(body) > max_bytes:
        raise FrameError(f"frame body of {len(body)} bytes exceeds the "
                         f"{max_bytes}-byte limit")
    return _HEADER.pack(len(body)) + body


def _jsonable(payload: dict) -> dict:
    """Arrays are first-class payload values for the binary codec; the
    JSON codec spells them as nested lists."""
    if not any(isinstance(value, np.ndarray) for value in payload.values()):
        return payload
    return {key: value.tolist() if isinstance(value, np.ndarray) else value
            for key, value in payload.items()}


def decode_body(body: bytes) -> dict:
    """Parse a JSON frame body; :class:`FrameError` on anything but one
    JSON object."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"malformed JSON frame body: {exc}") from None
    if not isinstance(payload, dict):
        raise FrameError(
            f"frame body must be a JSON object, got {type(payload).__name__}")
    return payload


def _decode_binary_frame(header_bytes: bytes, tail: bytes) -> dict:
    """Binary header + body -> payload dict tagged with its codec."""
    try:
        header = parse_header(header_bytes)
        payload = _decode_binary_tail(header, tail)
    except BinaryFormatError as exc:
        raise FrameError(str(exc)) from None
    payload.setdefault("v", header.version)
    if header.op and "op" not in payload:
        if header.op > len(OPS):
            raise FrameError(f"binary header op code {header.op} is out of "
                             f"range (known ops: {', '.join(OPS)})")
        payload["op"] = OPS[header.op - 1]
    payload[CODEC_KEY] = "binary"
    return payload


def _check_length(length: int, max_bytes: int) -> None:
    if length == 0:
        raise FrameError("zero-length frame")
    if length > max_bytes:
        raise FrameError(f"frame of {length} bytes exceeds the "
                         f"{max_bytes}-byte limit")


def _check_binary_lengths(header, max_bytes: int) -> None:
    total = BIN_HEADER.size + header.body_len
    if total > max_bytes:
        raise FrameError(f"binary frame of {total} bytes exceeds the "
                         f"{max_bytes}-byte limit")


# ---------------------------------------------------------------------
# Asyncio framing
# ---------------------------------------------------------------------
async def read_frame(reader, max_bytes: int = MAX_FRAME_BYTES) -> dict | None:
    """Read one frame (either codec) from an asyncio stream.

    Returns ``None`` on a clean EOF at a frame boundary; raises
    :class:`FrameError` on a truncated or malformed frame.  Binary
    frames come back with ndarray array fields and ``_codec: "binary"``.
    """
    prefix = await reader.read(_HEADER.size)
    if not prefix:
        return None
    while len(prefix) < _HEADER.size:
        more = await reader.read(_HEADER.size - len(prefix))
        if not more:
            raise FrameError("truncated frame header")
        prefix += more
    if is_binary(prefix):
        rest = BIN_HEADER.size - len(prefix)
        try:
            header_bytes = prefix + await reader.readexactly(rest)
        except Exception:
            raise FrameError("truncated binary frame header") from None
        try:
            header = parse_header(header_bytes)
        except BinaryFormatError as exc:
            raise FrameError(str(exc)) from None
        _check_binary_lengths(header, max_bytes)
        try:
            tail = await reader.readexactly(header.body_len)
        except Exception:  # IncompleteReadError on EOF mid-body
            raise FrameError("truncated binary frame body") from None
        return _decode_binary_frame(header_bytes, tail)
    (length,) = _HEADER.unpack(prefix)
    _check_length(length, max_bytes)
    try:
        body = await reader.readexactly(length)
    except Exception:  # IncompleteReadError on EOF mid-body
        raise FrameError("truncated frame body") from None
    return decode_body(body)


async def write_frame(writer, payload: dict, codec: str = "json",
                      max_bytes: int = MAX_FRAME_BYTES) -> None:
    """Write one frame to an asyncio stream and flush it; the size cap
    applies before anything is sent."""
    writer.write(encode_frame(payload, codec=codec, max_bytes=max_bytes))
    await writer.drain()


# ---------------------------------------------------------------------
# Blocking-socket framing
# ---------------------------------------------------------------------
def _recv_exactly(sock: socket.socket, count: int) -> bytes | None:
    """Blocking read of exactly ``count`` bytes; ``None`` on immediate
    EOF, :class:`FrameError` on EOF mid-read."""
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if not chunks:
                return None
            raise FrameError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket,
               max_bytes: int = MAX_FRAME_BYTES) -> dict | None:
    """Blocking-socket twin of :func:`read_frame`."""
    prefix = _recv_exactly(sock, _HEADER.size)
    if prefix is None:
        return None
    if is_binary(prefix):
        rest = _recv_exactly(sock, BIN_HEADER.size - len(prefix))
        if rest is None:
            raise FrameError("truncated binary frame header")
        header_bytes = prefix + rest
        try:
            header = parse_header(header_bytes)
        except BinaryFormatError as exc:
            raise FrameError(str(exc)) from None
        _check_binary_lengths(header, max_bytes)
        tail = _recv_exactly(sock, header.body_len)
        if tail is None:
            raise FrameError("truncated binary frame body")
        return _decode_binary_frame(header_bytes, tail)
    (length,) = _HEADER.unpack(prefix)
    _check_length(length, max_bytes)
    body = _recv_exactly(sock, length)
    if body is None:
        raise FrameError("truncated frame body")
    return decode_body(body)


def send_frame(sock: socket.socket, payload: dict, codec: str = "json",
               max_bytes: int = MAX_FRAME_BYTES) -> None:
    """Blocking-socket twin of :func:`write_frame`."""
    sock.sendall(encode_frame(payload, codec=codec, max_bytes=max_bytes))


# ---------------------------------------------------------------------
# Message constructors / validation
# ---------------------------------------------------------------------
def request_frame(op: str, request_id: int,
                  version: int = PROTOCOL_VERSION, **fields) -> dict:
    return {"v": version, "op": op, "id": request_id, **fields}


def ok_frame(request_id, version: int = PROTOCOL_VERSION, **payload) -> dict:
    return {"v": version, "id": request_id, "ok": True, **payload}


def error_frame(request_id, code: str, message: str,
                version: int = PROTOCOL_VERSION) -> dict:
    assert code in ERROR_CODES, code
    return {"v": version, "id": request_id, "ok": False,
            "error": {"code": code, "message": message}}


def validate_request(payload: dict,
                     supported: tuple[int, ...] = SUPPORTED_VERSIONS) -> str:
    """Check the request envelope; returns the op.

    Raises :class:`RequestError` with a typed code on an unsupported
    version, missing/invalid op, or a malformed ``id`` (the id must be a
    JSON scalar so it can be echoed back verbatim).  A binary frame
    claiming protocol v1 is rejected too: v1 never spoke binary.
    """
    version = payload.get("v")
    if version not in supported:
        raise RequestError(
            "version_mismatch",
            f"protocol version {version!r} unsupported "
            f"(server speaks {', '.join(str(v) for v in supported)})")
    if frame_codec(payload) == "binary" and version < 2:
        raise RequestError(
            "version_mismatch",
            f"binary frames require protocol v2; this one claims "
            f"v{version}")
    request_id = payload.get("id")
    if not isinstance(request_id, (int, str, type(None))) \
            or isinstance(request_id, bool):
        raise RequestError("bad_request",
                           f"request id must be an int, string or null, "
                           f"got {type(request_id).__name__}")
    op = payload.get("op")
    if not isinstance(op, str):
        raise RequestError("bad_request", "request has no 'op' field")
    if op not in OPS:
        raise RequestError("unknown_op",
                           f"unknown op {op!r} (known: {', '.join(OPS)})")
    return op
