"""The asyncio TCP gateway: a serving engine behind a network socket.

:class:`GatewayServer` accepts length-prefixed JSON frames (see
:mod:`repro.gateway.protocol`) and submits each connection's ``ingest``
/ ``scores`` requests into its fleet's
:class:`~repro.runtime.ServingEngine` — the same engine that drives
``fleet.step()`` — whose bounded per-stream admission queues and
pluggable :class:`~repro.runtime.SchedulingPolicy` replace the old
hardcoded ≤1-request-per-stream-per-round pop loop.  A single gateway
loop asks the engine to run policy-composed rounds in a one-worker
executor thread; because scoring is batch-composition-independent and
the engine preserves per-stream FIFO no matter the policy, gateway-served
scores are bit-identical to a direct in-process ``fleet.step()`` run over
the same per-stream window sequence, no matter how clients interleave.

Natural batching, no added latency: while one round is scoring in the
executor, newly arriving windows pile up in the engine's queues and form
the next round; an idle gateway serves a lone request immediately.
Admission control rejects work beyond ``max_queue_depth`` queued requests
per stream with a typed ``backpressure`` frame instead of buffering
without bound; requests may carry ``priority``/``deadline_ms`` fields for
the priority policy (a missed deadline answers a typed ``expired``
frame); and ``shutdown`` drains every queued request before the server
closes.

Durable serving: constructed with ``wal_dir``, the gateway attaches a
:class:`~repro.wal.WalDurability` hook to the engine — every accepted
ingest is logged before it becomes schedulable and fsynced (group
commit, one per round) before its response future resolves, so an acked
ingest survives a SIGKILL and ``repro recover <wal_dir>`` rebuilds the
fleet bit-identically.  By default rounds are *pipelined*: the engine's
committer thread fsyncs round N while the round loop computes round
N+1, and acks resolve from the committer once their covering fsync
returns — same ack-after-fsync guarantee, shorter critical path
(``pipeline=False`` restores the serial loop).

The server fronts a :class:`~repro.serving.DeploymentFleet` or a
:class:`~repro.serving.ShardedFleet` interchangeably — both are facades
over the engine, so the gateway never branches on fleet type.
:func:`serve_in_thread` runs the event loop in a daemon thread for
blocking callers — tests, examples, and the ``repro loadgen`` harness
driving a server in the same process.

Event-loop hygiene is machine-checked: no ``async def`` in this package
may call blocking work (fsync, sleeps, socket dials, subprocesses, or
engine/fleet round methods) directly — it must route through
``loop.run_in_executor`` — enforced by ``repro lint``'s
**async-blocking** rule in CI.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..errors import ConfigError, StateError
from ..metrics import MetricsRegistry
from ..obs import TraceContext, TraceRecorder, write_chrome_trace, write_jsonl
from ..runtime import AdmissionError, EngineRequest, resolve_policy
from .protocol import (
    CODECS,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    FrameError,
    RequestError,
    error_frame,
    frame_codec,
    ok_frame,
    read_frame,
    validate_request,
    write_frame,
)

__all__ = ["GatewayServer", "GatewayHandle", "serve_in_thread",
           "DEFAULT_MAX_QUEUE_DEPTH"]

#: Queued-but-unserved requests allowed per stream before admission
#: control answers ``backpressure``.  One round of headroom per stream
#: is plenty for closed-loop clients; open-loop load beyond the fleet's
#: throughput is the case the bound exists for.
DEFAULT_MAX_QUEUE_DEPTH = 8


@dataclass
class _Pending:
    """Gateway-side handle riding along an :class:`EngineRequest` tag."""

    future: asyncio.Future
    owner: object                 # the connection, for disconnect cleanup


@dataclass(eq=False)  # identity semantics: connections live in a set
class _Connection:
    writer: asyncio.StreamWriter
    attached: set = field(default_factory=set)
    # Serializes writer.drain() across this connection's response tasks:
    # write() buffers atomically, but concurrent drain() waiters on one
    # flow-control-paused transport are not supported by asyncio.
    write_lock: asyncio.Lock = field(default_factory=asyncio.Lock)


class GatewayServer:
    """Serve a fleet's streams over TCP with admission control."""

    def __init__(self, fleet, host: str = "127.0.0.1", port: int = 0,
                 max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH,
                 max_frame_bytes: int = MAX_FRAME_BYTES,
                 metrics: MetricsRegistry | None = None,
                 policy=None, wal_dir=None, wal_config=None,
                 snapshot_policy=None, codec: str = "binary",
                 tracer=None, trace_dir=None,
                 slow_round_ms: float | None = None,
                 pipeline: bool = True):
        if max_queue_depth < 1:
            raise ConfigError("max_queue_depth must be >= 1")
        if codec not in CODECS:
            raise ConfigError(f"codec must be one of {CODECS}, got {codec!r}")
        # codec="binary": speak protocol v1 and v2, advertise both codecs
        # in attach responses, answer each request in the codec it
        # arrived in.  codec="json": behave as a legacy v1-only peer —
        # v2 requests get version_mismatch and binary frames get
        # bad_frame — which is exactly what clients negotiate against.
        self.codec = codec
        self.supported_versions = SUPPORTED_VERSIONS if codec == "binary" \
            else (1,)
        self.codecs = ("json", "binary") if codec == "binary" else ("json",)
        engine = getattr(fleet, "engine", None)
        if engine is None:
            raise TypeError(
                f"{type(fleet).__name__} exposes no serving engine; the "
                "gateway fronts DeploymentFleet/ShardedFleet facades over "
                "repro.runtime.ServingEngine")
        self.fleet = fleet
        self.engine = engine
        self.engine.max_queue_depth = max_queue_depth
        if policy is not None:
            self.engine.policy = resolve_policy(policy)
        if metrics is not None:
            # One registry for everything: the caller's registry replaces
            # the engine's so engine.* and gateway.* metrics land together.
            self.engine.metrics = metrics
        self.metrics = self.engine.metrics
        # Tracing: with a trace_dir (or slow_round_ms) and no explicit
        # tracer, the gateway owns a recorder and exports it at drain;
        # an explicit tracer may be shared (the loadgen harness records
        # client and server spans into one recorder).  Every server-side
        # span call site guards on ``self.tracer is not None``, so an
        # untraced gateway's hot path is unchanged.
        self.trace_dir = Path(trace_dir) if trace_dir is not None else None
        if tracer is None and (self.trace_dir is not None
                               or slow_round_ms is not None):
            tracer = TraceRecorder()
        self.tracer = tracer
        if tracer is not None:
            self.engine.tracer = tracer
            if slow_round_ms is not None:
                self.engine.slow_round_ms = float(slow_round_ms)
                if self.trace_dir is not None:
                    self.engine.on_slow_round = self._dump_slow_round
        # Durable serving: with a wal_dir every accepted ingest is
        # appended to a write-ahead log before it becomes schedulable,
        # and the engine group-commit fsyncs at the end of each round
        # *before* any response future resolves — so an acked ingest is
        # always on disk (ack-after-append), recoverable with
        # ``repro recover <wal_dir>`` after a crash.
        self.durability = None
        if wal_dir is not None:
            from ..wal import WalDurability
            self.durability = WalDurability(
                fleet, wal_dir, config=wal_config, policy=snapshot_policy,
                metrics=self.metrics, tracer=self.tracer)
            self.engine.durability = self.durability
        # Pipelined rounds (default): run_round hands each round's
        # results to the engine's committer thread and immediately
        # schedules the next round, overlapping round N's group-commit
        # fsync with round N+1's compute.  The committer delivers the
        # results through _on_batch_committed once their fsync returns,
        # so acks are still strictly after the fsync that covers them —
        # --no-pipeline restores the fully serial round loop.
        self.pipeline = bool(pipeline)
        self.engine.pipeline = self.pipeline
        self.engine.on_commit = self._on_batch_committed if self.pipeline \
            else None
        self._loop: asyncio.AbstractEventLoop | None = None
        # Size of the most recent committed ack burst — the round-gather
        # window's estimate of how many closed-loop clients just
        # unblocked (see _gather_arrivals).
        self._ack_burst = 1
        self.host = host
        self.port = port
        self.max_queue_depth = max_queue_depth
        self.max_frame_bytes = max_frame_bytes
        self.address: tuple[str, int] | None = None
        self._connections: set[_Connection] = set()
        self._draining = False
        self._server: asyncio.AbstractServer | None = None
        self._round_task: asyncio.Task | None = None
        self._drain_task: asyncio.Task | None = None
        self._executor: ThreadPoolExecutor | None = None
        # Created in start() so they bind to the serving loop.
        self._work: asyncio.Event | None = None
        self._paused: asyncio.Event | None = None
        self._idle: asyncio.Event | None = None
        self._stopped: asyncio.Event | None = None
        for op in ("ingest", "scores", "attach", "detach", "stats",
                   "shutdown"):
            self.metrics.counter(f"gateway.requests.{op}")
        for wire_codec in CODECS:
            self.metrics.counter(f"gateway.frames.{wire_codec}")
        self.metrics.counter("gateway.rejected.backpressure")
        self.metrics.counter("gateway.errors")
        self.metrics.counter("gateway.rounds")
        self.metrics.counter("gateway.connections")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and start serving; returns the bound ``(host, port)``
        (with ``port=0`` the OS picks a free ephemeral port)."""
        if self._server is not None:
            raise StateError("server already started")
        self._loop = asyncio.get_running_loop()
        self._work = asyncio.Event()
        self._paused = asyncio.Event()
        self._paused.set()
        self._idle = asyncio.Event()
        self._stopped = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="gateway-round")
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.address = self._server.sockets[0].getsockname()[:2]
        self._round_task = asyncio.ensure_future(self._round_loop())
        return self.address

    async def wait_stopped(self) -> None:
        """Block until a drain triggered by ``shutdown`` has finished."""
        await self._stopped.wait()

    async def serve(self) -> tuple[str, int]:
        """``start()`` then run until a ``shutdown`` request drains the
        server; returns the address it served on."""
        address = await self.start()
        try:
            await self.wait_stopped()
        finally:
            if not self._stopped.is_set():
                await self.shutdown()
        return address

    async def shutdown(self) -> None:
        """Graceful drain: stop admitting work, serve every already
        queued request, then close the listener and all connections."""
        if self._server is None:
            raise StateError("server was never started")
        if self._drain_task is None:
            self._draining = True
            self._drain_task = asyncio.ensure_future(self._drain_and_stop())
        await self._stopped.wait()

    async def _drain_and_stop(self) -> None:
        self._draining = True
        self._paused.set()      # a paused server must still drain
        self._work.set()        # wake the round loop so it can notice
        await self._idle.wait()
        loop = asyncio.get_running_loop()
        if self.pipeline:
            # Committer barrier: every handed-off batch fsyncs and
            # delivers before connections close, so the last round's
            # acks are written, not dropped.  Joining a thread blocks,
            # hence the executor; the yield after lets the response
            # tasks the delivered results woke buffer their frames.
            await loop.run_in_executor(None, self.engine.stop_committer)
            await asyncio.sleep(0)
        self._server.close()
        await self._server.wait_closed()
        for conn in list(self._connections):
            conn.writer.close()
        self._executor.shutdown(wait=True)
        if self.durability is not None:
            # After the executor is done: no round is running, so the
            # parting snapshot sees quiescent fleet state.  The close
            # snapshots + fsyncs, so it runs off-loop — the round
            # executor is already shut down, hence the default pool.
            await loop.run_in_executor(None, self.durability.close,
                                       self.engine)
        if self.tracer is not None and self.trace_dir is not None:
            # File I/O: off-loop, like the durability close above.
            await loop.run_in_executor(None, self._export_traces)
        self._stopped.set()

    def _export_traces(self) -> None:
        """Write every recorded span to ``trace_dir`` (JSONL + Chrome)."""
        self.trace_dir.mkdir(parents=True, exist_ok=True)
        spans = self.tracer.snapshot()
        write_jsonl(spans, self.trace_dir / "trace.jsonl")
        write_chrome_trace(spans, self.trace_dir / "trace_chrome.json")

    def _dump_slow_round(self, spans) -> None:
        """Slow-round hook: dump the offending round's full span tree.

        Called by the engine on the round executor thread (not the event
        loop), so synchronous file I/O is fine here."""
        self.trace_dir.mkdir(parents=True, exist_ok=True)
        write_jsonl(spans,
                    self.trace_dir / f"slow-round-{self.engine.rounds}.jsonl")

    # ------------------------------------------------------------------
    # The round loop
    # ------------------------------------------------------------------
    async def _round_loop(self) -> None:
        """Drive the engine: whenever work is queued, run one
        policy-composed round in the executor thread and resolve the
        finished requests' futures.

        The round itself — scheduling, waves, score-then-ingest with
        per-entry error isolation — lives in
        :meth:`repro.runtime.ServingEngine.run_round`, which is total:
        every selected or expired request comes back as exactly one
        :class:`~repro.runtime.RoundResult`, so no client is ever left
        hanging.

        Pipelined mode: ``run_round`` returns ``[]`` (results arrive via
        the committer's :meth:`_on_batch_committed` once their group
        commit fsyncs), so the resolution loop below only runs on the
        serial path — the next round starts without waiting for the
        previous round's fsync.
        """
        loop = asyncio.get_running_loop()
        while True:
            if self._draining and not self.engine.has_pending():
                self._idle.set()
                return
            await self._work.wait()
            self._work.clear()
            await self._paused.wait()
            if not self.engine.has_pending():
                continue
            if self.pipeline:
                await self._gather_arrivals(loop)
            try:
                results = await loop.run_in_executor(
                    self._executor, self.engine.run_round)
            except Exception:  # noqa: BLE001 — belt over run_round's
                # totality guarantee: whatever slips through must not
                # kill the round loop and hang every connected client.
                self.metrics.counter("gateway.errors").inc()
                self._work.set()
                continue
            if self.engine.has_pending():
                self._work.set()  # leftovers form the next round
            if not results:
                continue
            self.metrics.counter("gateway.rounds").inc()
            for result in results:
                pending = result.request.tag
                if not pending.future.done():
                    pending.future.set_result(result)

    async def _gather_arrivals(self, loop) -> None:
        """Pipelined mode's round-gather window.

        A committed batch acks several closed-loop clients at once, but
        their next requests arrive staggered by thread scheduling;
        starting a round on the very first arrival would fragment what
        serial mode serves as one coalesced round (serial mode's inline
        fsync used to give stragglers time to pile up).  Anticipate the
        burst: the last resolved batch's size bounds how many clients
        just unblocked, so wait — one short beat at a time, bounded —
        until that many requests are pending or arrivals go quiet, and
        stop the instant the expectation is met so a full round starts
        with no trailing delay."""
        pending = self.engine.pending_count()
        expected = self._ack_burst
        if pending >= expected:
            return
        deadline = loop.time() + 0.004
        while loop.time() < deadline:
            await asyncio.sleep(0.0005)
            count = self.engine.pending_count()
            if count >= expected or count <= pending:
                return
            pending = count

    def _on_batch_committed(self, results) -> None:
        """Completion sink for the engine's committer thread (pipelined
        mode): marshal one committed batch onto the event loop to
        resolve its response futures.  The fsync covering these requests
        has already returned (or the batch carries typed ``durability``
        errors), so resolving here preserves ack-after-fsync."""
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(self._resolve_results, results)
        except RuntimeError:
            # The loop shut down between the check and the call; the
            # futures' owners are gone with it.
            pass

    def _resolve_results(self, results) -> None:
        if not results:
            return
        self._ack_burst = len(results)
        self.metrics.counter("gateway.rounds").inc()
        for result in results:
            pending = result.request.tag
            if not pending.future.done():
                pending.future.set_result(result)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        conn = _Connection(writer)
        self._connections.add(conn)
        self.metrics.counter("gateway.connections").inc()
        # One task per request so the reader keeps watching the socket
        # while rounds run: a disconnect mid-round is seen immediately
        # and the client's queued work is dropped instead of lingering.
        # Responses carry the request id, and each frame is buffered in
        # one atomic write, so concurrent completions cannot interleave.
        tasks: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    payload = await read_frame(reader, self.max_frame_bytes)
                    if payload is not None \
                            and frame_codec(payload) == "binary" \
                            and "binary" not in self.codecs:
                        # A v1-only peer does not even understand binary
                        # framing; refuse at the framing layer, exactly
                        # as a genuinely old server would.
                        raise FrameError(
                            "this server speaks protocol v1 (JSON frames "
                            "only); binary frames are not understood")
                except FrameError as exc:
                    # A corrupt stream cannot be re-synchronized: answer
                    # once, then hang up.
                    self.metrics.counter("gateway.errors").inc()
                    with contextlib.suppress(ConnectionError, OSError):
                        async with conn.write_lock:
                            await write_frame(writer, error_frame(
                                None, "bad_frame", str(exc),
                                version=max(self.supported_versions)),
                                max_bytes=self.max_frame_bytes)
                    break
                if payload is None:
                    break
                task = asyncio.ensure_future(self._respond(payload, conn))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        finally:
            self._connections.discard(conn)
            self._drop_pending(conn)
            for task in list(tasks):
                task.cancel()
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()

    async def _respond(self, payload: dict, conn: _Connection) -> None:
        # Answer in the codec the request arrived in: binary requests get
        # binary responses (scores as raw float64 buffers), JSON requests
        # get JSON — which is what lets mixed-codec clients share one
        # server, or one connection switch codecs frame by frame.
        codec = frame_codec(payload)
        self.metrics.counter(f"gateway.frames.{codec}").inc()
        try:
            reply = await self._dispatch(payload, conn)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 — never leave a client hanging
            self.metrics.counter("gateway.errors").inc()
            reply = error_frame(None, "internal",
                                f"{type(exc).__name__}: {exc}",
                                version=max(self.supported_versions))
        with contextlib.suppress(ConnectionError, OSError):
            async with conn.write_lock:
                try:
                    await write_frame(conn.writer, reply, codec=codec,
                                      max_bytes=self.max_frame_bytes)
                except FrameError as exc:
                    # Write-side frame cap: an oversized response must
                    # become a typed error the client can parse, not a
                    # frame it will reject after buffering.
                    self.metrics.counter("gateway.errors").inc()
                    await write_frame(
                        conn.writer,
                        error_frame(reply.get("id"), "bad_frame",
                                    f"response exceeds the frame cap: "
                                    f"{exc}",
                                    version=reply.get(
                                        "v", max(self.supported_versions))),
                        codec=codec, max_bytes=self.max_frame_bytes)

    def _drop_pending(self, conn: _Connection) -> None:
        """Forget a disconnected client's queued-but-unserved requests
        (requests already inside a running round complete; their results
        are simply never sent)."""
        for request in self.engine.drop_pending(
                lambda r: r.tag.owner is conn):
            request.tag.future.cancel()

    async def _dispatch(self, payload: dict, conn: _Connection) -> dict:
        raw_id = payload.get("id")
        echo_id = raw_id if isinstance(raw_id, (int, str)) \
            and not isinstance(raw_id, bool) else None
        # Echo the request's protocol version in the response envelope
        # (a v1 client must not see v2 frames); invalid versions are
        # answered with the server's newest.
        raw_v = payload.get("v")
        echo_v = raw_v if raw_v in self.supported_versions \
            else max(self.supported_versions)
        try:
            op = validate_request(payload, self.supported_versions)
        except RequestError as exc:
            self.metrics.counter("gateway.errors").inc()
            return error_frame(echo_id, exc.code, exc.message,
                               version=echo_v)
        self.metrics.counter(f"gateway.requests.{op}").inc()
        try:
            if op in ("ingest", "scores"):
                return await self._serve_windows(op, payload, conn, echo_id,
                                                 echo_v)
            if op == "attach":
                return self._attach(payload, conn, echo_id, echo_v)
            if op == "detach":
                return self._detach(payload, conn, echo_id, echo_v)
            if op == "stats":
                return self._stats(echo_id, echo_v)
            # shutdown: acknowledge first; the drain task closes the
            # connection once every queued request has been served.
            if self._drain_task is None:
                self._draining = True
                self._drain_task = asyncio.ensure_future(
                    self._drain_and_stop())
            return ok_frame(echo_id, version=echo_v, draining=True)
        except RequestError as exc:
            if exc.code != "backpressure":  # rejections counted separately
                self.metrics.counter("gateway.errors").inc()
            return error_frame(echo_id, exc.code, exc.message,
                               version=echo_v)

    def _stream_of(self, payload: dict) -> str:
        stream = payload.get("stream")
        if not isinstance(stream, str) or not stream:
            raise RequestError("bad_request",
                               "request needs a non-empty 'stream' field")
        return stream

    def _attach(self, payload: dict, conn: _Connection, echo_id,
                echo_v: int) -> dict:
        if self._draining:
            raise RequestError("shutting_down",
                               "server is draining; no new attachments")
        stream = self._stream_of(payload)
        if stream not in self.fleet:
            raise RequestError(
                "unknown_stream",
                f"no stream named {stream!r} attached to the fleet "
                f"(known: {', '.join(sorted(self.fleet.names)) or 'none'})")
        conn.attached.add(stream)
        # The negotiation advertisement: the codecs list tells a v2
        # client it may switch this connection to binary frames.
        return ok_frame(echo_id, version=echo_v, stream=stream,
                        attached=sorted(conn.attached),
                        max_queue_depth=self.max_queue_depth,
                        codecs=list(self.codecs))

    def _detach(self, payload: dict, conn: _Connection, echo_id,
                echo_v: int) -> dict:
        stream = self._stream_of(payload)
        if stream not in conn.attached:
            raise RequestError(
                "not_attached",
                f"this connection is not attached to stream {stream!r}")
        conn.attached.discard(stream)
        return ok_frame(echo_id, version=echo_v, stream=stream,
                        attached=sorted(conn.attached))

    def _stats(self, echo_id, echo_v: int) -> dict:
        engine = self.engine.stats(concurrent=True)
        return ok_frame(
            echo_id, version=echo_v,
            metrics=self.metrics.to_dict(),
            engine=engine,
            # "version" is ok_frame's protocol-version kwarg, so the
            # package version is promoted under its own key.
            server_version=engine["version"],
            uptime_seconds=engine["uptime_seconds"],
            fleet={"type": type(self.fleet).__name__,
                   "streams": list(self.fleet.names),
                   "rounds": self.fleet.rounds},
            queued=self.engine.queued_depths(), draining=self._draining)

    def _scheduling_fields(self, payload: dict) -> tuple[int, float | None]:
        """Optional ``priority``/``deadline_ms`` request fields for the
        priority policy (harmless under fair/greedy scheduling)."""
        priority = payload.get("priority", 0)
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise RequestError("bad_request",
                               f"'priority' must be an integer, got "
                               f"{type(priority).__name__}")
        deadline_ms = payload.get("deadline_ms")
        if deadline_ms is None:
            return priority, None
        if isinstance(deadline_ms, bool) \
                or not isinstance(deadline_ms, (int, float)) \
                or deadline_ms <= 0:
            raise RequestError("bad_request",
                               "'deadline_ms' must be a positive number "
                               "of milliseconds")
        # On the engine's scheduling clock, not time.monotonic(): expiry
        # is evaluated against engine.now(), and the two must agree when
        # a non-default clock was injected.
        return priority, self.engine.now() + float(deadline_ms) / 1e3

    async def _serve_windows(self, op: str, payload: dict,
                             conn: _Connection, echo_id,
                             echo_v: int) -> dict:
        # A traced request: the server span joins the client's trace via
        # the optional ``trace`` wire field (absent on v1/untraced peers
        # → a new root), and the engine parents queue-wait/stage spans
        # under the request's context.
        server_span = None
        if self.tracer is not None:
            server_span = self.tracer.start(
                "gateway.request",
                parent=TraceContext.from_wire(payload.get("trace")),
                attrs={"op": op, "stream": str(payload.get("stream")),
                       "codec": frame_codec(payload)})
        outcome = "error"
        try:
            reply = await self._serve_windows_inner(
                op, payload, conn, echo_id, echo_v,
                server_span.context if server_span is not None else None)
            outcome = "ok"
            return reply
        except RequestError as exc:
            outcome = exc.code
            raise
        finally:
            if server_span is not None:
                server_span.finish(outcome=outcome)

    async def _serve_windows_inner(self, op: str, payload: dict,
                                   conn: _Connection, echo_id,
                                   echo_v: int, trace) -> dict:
        started = time.perf_counter()
        # Binary responses carry scores as raw float64 buffers; JSON as
        # nested lists.  Either way the values are bit-identical — JSON
        # float64 round-trips exactly via shortest repr.
        binary_reply = frame_codec(payload) == "binary"
        stream = self._stream_of(payload)
        if self._draining:
            raise RequestError("shutting_down",
                               "server is draining; no new windows accepted")
        if stream not in conn.attached:
            raise RequestError(
                "not_attached",
                f"attach to stream {stream!r} before sending windows")
        if stream not in self.fleet:
            raise RequestError("unknown_stream",
                               f"stream {stream!r} has left the fleet")
        priority, deadline = self._scheduling_fields(payload)
        try:
            windows = np.asarray(payload.get("windows"), dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise RequestError(
                "bad_request", f"'windows' is not a numeric array: {exc}")
        if windows.ndim != 3 or 0 in windows.shape:
            raise RequestError(
                "bad_request",
                f"expected non-empty (B, T, frame_dim) windows, got shape "
                f"{windows.shape}")
        future = asyncio.get_running_loop().create_future()
        request = EngineRequest(op=op, stream=stream, windows=windows,
                                priority=priority, deadline=deadline,
                                tag=_Pending(future=future, owner=conn),
                                trace=trace)
        try:
            self.engine.submit(request)
        except AdmissionError as exc:
            self.metrics.counter("gateway.rejected.backpressure").inc()
            raise RequestError(exc.code, exc.message)
        self._work.set()
        result = await future
        if result.kind == "error":
            raise RequestError(result.code, result.message)
        self.metrics.histogram(f"gateway.{op}_latency").observe(
            time.perf_counter() - started)
        def _wire_scores(scores) -> object:
            array = np.asarray(scores, dtype=np.float64)
            return array if binary_reply else array.tolist()

        if result.kind == "scores":
            return ok_frame(echo_id, version=echo_v, stream=stream,
                            scores=_wire_scores(result.scores))
        event = result.event
        log = event.log
        return ok_frame(
            echo_id, version=echo_v, stream=stream, step=event.step,
            scores=_wire_scores(event.scores),
            mission=event.mission,
            adapted=bool(log.updated) if log is not None else False,
            pruned=len(log.pruned) if log is not None else 0)


# ---------------------------------------------------------------------
# Blocking-world harness
# ---------------------------------------------------------------------
class GatewayHandle:
    """A gateway event loop running in a daemon thread.

    ``address`` is the bound ``(host, port)``; :meth:`stop` requests a
    graceful drain from any thread and joins the loop.  Usable as a
    context manager.  ``pause_rounds``/``resume_rounds`` freeze the
    round loop (admission keeps queueing) — the hook the failure-path
    tests use to fill queues deterministically.
    """

    def __init__(self, server: GatewayServer, thread: threading.Thread,
                 loop: asyncio.AbstractEventLoop):
        self.server = server
        self.thread = thread
        self.loop = loop

    @property
    def address(self) -> tuple[str, int]:
        return self.server.address

    def _call_soon(self, fn) -> None:
        done = threading.Event()
        self.loop.call_soon_threadsafe(lambda: (fn(), done.set()))
        if not done.wait(timeout=10):
            raise TimeoutError("gateway event loop is not responding")

    def pause_rounds(self) -> None:
        self._call_soon(self.server._paused.clear)

    def resume_rounds(self) -> None:
        self._call_soon(self.server._paused.set)

    def stop(self, timeout: float = 30.0) -> None:
        """Drain and stop the server, then join its thread (idempotent —
        a server already stopped by a client ``shutdown`` just joins)."""
        if self.thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(
                self.server.shutdown(), self.loop)
            try:
                future.result(timeout=timeout)
            except (asyncio.CancelledError, RuntimeError):
                pass
        self.thread.join(timeout=timeout)

    def __enter__(self) -> "GatewayHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def serve_in_thread(fleet, **kwargs) -> GatewayHandle:
    """Start a :class:`GatewayServer` over ``fleet`` on a daemon thread;
    returns once the socket is bound.  Keyword arguments go to the
    server constructor (``port=0`` picks an ephemeral port)."""
    server = GatewayServer(fleet, **kwargs)
    started = threading.Event()
    box: dict = {}

    def runner() -> None:
        async def main() -> None:
            await server.start()
            box["loop"] = asyncio.get_running_loop()
            started.set()
            await server.wait_stopped()
        try:
            asyncio.run(main())
        except BaseException as exc:  # noqa: BLE001 — surfaced to caller
            box["error"] = exc
            started.set()

    thread = threading.Thread(target=runner, daemon=True,
                              name="gateway-server")
    thread.start()
    if not started.wait(timeout=60):
        raise TimeoutError("gateway server failed to start in time")
    if "error" in box:
        raise StateError("gateway server failed to start") from box["error"]
    return GatewayHandle(server, thread, box["loop"])
