"""Blocking gateway client SDK and the open-loop load generator.

:class:`GatewayClient` is the synchronous counterpart of the asyncio
server: one TCP connection, one request in flight, typed
:class:`GatewayError` on error frames — the shape an edge device's
uplink code would take.

:class:`LoadGenerator` drives a gateway with many concurrent client
connections.  Streams are split round-robin across clients; each client
replays its streams' pre-materialized arrival windows in stream order
(per-stream request order is what score parity is defined over) and
records per-request latency into a shared
:class:`~repro.metrics.LatencyHistogram`.  With a target
request ``rate`` the generator is open-loop — sends are scheduled on a
global clock regardless of completions, the regime where admission
control starts answering ``backpressure`` — and without one each
connection runs closed-loop at full speed.

:func:`run_gateway_benchmark` is the harness behind ``repro loadgen``:
it computes a direct in-process ``fleet.step()`` reference over the
same streams, then serves identical windows through a fresh gateway at
each client-concurrency level, verifying bit-identical scores and
writing the latency/throughput curve as ``BENCH_5.json``.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..metrics import LatencyHistogram
from .protocol import (
    CODECS,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameError,
    recv_frame,
    request_frame,
    send_frame,
)
from .server import DEFAULT_MAX_QUEUE_DEPTH, serve_in_thread
from ..errors import ConfigError

__all__ = ["GatewayError", "GatewayClient", "LoadGenConfig",
           "LoadGenerator", "LoadGenResult", "run_gateway_benchmark",
           "format_gateway_benchmark", "DEFAULT_GATEWAY_BENCH_PATH",
           "run_durability_benchmark", "format_durability_benchmark",
           "DEFAULT_DURABILITY_BENCH_PATH",
           "run_codec_ab_benchmark", "format_codec_ab_benchmark",
           "DEFAULT_CODEC_AB_BENCH_PATH",
           "run_pipeline_ab_benchmark", "format_pipeline_ab_benchmark",
           "DEFAULT_PIPELINE_AB_BENCH_PATH"]

#: BENCH_4 was the pre-runtime gateway artifact; BENCH_5 adds the
#: promoted engine metrics (rounds, coalesce ratio, queue gauges) from
#: the server's ``stats`` op next to the throughput/latency curve.
DEFAULT_GATEWAY_BENCH_PATH = "BENCH_5.json"

#: BENCH_6 is the durability A/B profile: the same load served with and
#: without a write-ahead log, recording what ack-after-append fsync
#: batching costs in request latency (p50/p95 delta) and throughput.
DEFAULT_DURABILITY_BENCH_PATH = "BENCH_6.json"

#: BENCH_7 is the codec A/B profile: the identical parity-verified load
#: served once over JSON frames and once over binary frames, at small
#: and large window batches, recording the latency/throughput delta —
#: plus a sharded (shared-memory ring) side gated on the same parity.
DEFAULT_CODEC_AB_BENCH_PATH = "BENCH_7.json"

#: BENCH_10 is the pipelining A/B profile: the identical load served by
#: a serial round loop and by pipelined rounds (async group-commit acks
#: + the fused score/ingest scatter), across a serial/pipelined x
#: json/binary x inline/sharded parity matrix plus a WAL-enabled
#: latency/throughput A/B — gated on every cell's bit parity and on a
#: crash-recovery drill against a pipelined engine.
DEFAULT_PIPELINE_AB_BENCH_PATH = "BENCH_10.json"


class GatewayError(Exception):
    """An error frame from the gateway; ``code`` is the typed code."""

    def __init__(self, code: str, message: str):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


class GatewayClient:
    """Blocking request/response client for one gateway connection.

    ``codec`` is a *preference*: the client always opens the
    conversation in JSON (the one codec every peer speaks) at its
    newest protocol version, and upgrades window traffic to binary
    frames only after an ``attach`` response advertises the codec.  A
    v1-only server answers ``version_mismatch`` instead; the client
    transparently re-attaches with ``v = 1`` and stays on JSON — the
    fallback path that keeps old peers working.  ``negotiated_codec``
    reports where negotiation landed.
    """

    def __init__(self, host: str, port: int, timeout: float = 60.0,
                 max_frame_bytes: int = MAX_FRAME_BYTES,
                 codec: str = "binary", tracer=None):
        if codec not in CODECS:
            raise ConfigError(f"codec must be one of {CODECS}, got {codec!r}")
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.max_frame_bytes = max_frame_bytes
        self.preferred_codec = codec
        #: Optional :class:`repro.obs.TraceRecorder`; when set, window
        #: ops record ``client.request`` spans whose context rides the
        #: request's ``trace`` field (an ordinary optional frame field,
        #: so untraced and v1 peers are unaffected).
        self.tracer = tracer
        #: Protocol version spoken on this connection; drops to 1 after
        #: a ``version_mismatch`` from a v1-only peer.
        self.protocol_version = PROTOCOL_VERSION if codec == "binary" else 1
        #: Wire codec for window traffic; "json" until negotiated up.
        self.negotiated_codec = "json"
        self._next_id = 0
        self._closed = False

    # -- plumbing ------------------------------------------------------
    def request(self, op: str, codec: str | None = None, **fields) -> dict:
        """Send one request and wait for its response frame; raises
        :class:`GatewayError` on an error frame, :class:`FrameError` /
        :class:`ConnectionError` on transport problems.  ``codec``
        overrides the negotiated wire codec for this one frame."""
        if self._closed:
            raise ConnectionError("client is closed")
        request_id = self._next_id
        self._next_id += 1
        send_frame(self._sock,
                   request_frame(op, request_id,
                                 version=self.protocol_version, **fields),
                   codec=codec or self.negotiated_codec,
                   max_bytes=self.max_frame_bytes)
        reply = recv_frame(self._sock, self.max_frame_bytes)
        if reply is None:
            raise ConnectionError("gateway closed the connection")
        if reply.get("ok"):
            return reply
        error = reply.get("error") or {}
        raise GatewayError(error.get("code", "internal"),
                           error.get("message", "unspecified gateway error"))

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._sock.close()

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _wire_windows(self, windows) -> object:
        """Windows as this connection's codec spells them: an ndarray
        rides a binary frame as its raw float64 buffer; JSON gets nested
        lists.  Either way the server decodes the identical values."""
        array = np.asarray(windows, dtype=np.float64)
        return array if self.negotiated_codec == "binary" else array.tolist()

    def _traced_request(self, op: str, stream: str, **fields) -> dict:
        """One window op, wrapped in a ``client.request`` span when a
        tracer is attached; the span's context is stamped on the frame
        so the server's ``gateway.request`` span joins this trace."""
        if self.tracer is None:
            return self.request(op, stream=stream, **fields)
        span = self.tracer.start(
            "client.request",
            attrs={"op": op, "stream": stream,
                   "codec": self.negotiated_codec})
        try:
            reply = self.request(op, stream=stream,
                                 trace=dict(span.context.to_wire()),
                                 **fields)
        except GatewayError as exc:
            span.finish(outcome=exc.code)
            raise
        except Exception:
            span.finish(outcome="error")
            raise
        span.finish(outcome="ok")
        return reply

    # -- ops -----------------------------------------------------------
    def attach(self, stream: str) -> dict:
        """Attach to a stream — and negotiate the wire codec.

        The attach itself always goes as JSON: it must be readable by a
        peer that has never heard of binary frames.  A v2 response
        advertising ``codecs`` upgrades this connection's window traffic
        to the preferred codec; a ``version_mismatch`` from a v1-only
        peer triggers one silent re-attach at ``v = 1``.
        """
        try:
            reply = self.request("attach", stream=stream, codec="json")
        except GatewayError as exc:
            if exc.code != "version_mismatch" or self.protocol_version <= 1:
                raise
            self.protocol_version = 1
            self.negotiated_codec = "json"
            reply = self.request("attach", stream=stream, codec="json")
        advertised = reply.get("codecs") or ["json"]
        if self.preferred_codec == "binary" and "binary" in advertised \
                and self.protocol_version >= 2:
            self.negotiated_codec = "binary"
        return reply

    def detach(self, stream: str) -> dict:
        return self.request("detach", stream=stream)

    def ingest(self, stream: str, windows) -> dict:
        """Submit one arrival batch; the reply's ``"scores"`` (nested
        list over JSON, raw float64 ndarray over binary) is normalized
        to an array under ``"scores_array"``."""
        reply = self._traced_request("ingest", stream,
                                     windows=self._wire_windows(windows))
        reply["scores_array"] = np.asarray(reply["scores"], dtype=np.float64)
        return reply

    def scores(self, stream: str, windows) -> np.ndarray:
        """Score windows without feeding the stream's monitor."""
        reply = self._traced_request("scores", stream,
                                     windows=self._wire_windows(windows))
        return np.asarray(reply["scores"], dtype=np.float64)

    def stats(self) -> dict:
        return self.request("stats")

    def shutdown(self) -> dict:
        """Ask the server to drain and stop."""
        return self.request("shutdown")


# ---------------------------------------------------------------------
# Load generation
# ---------------------------------------------------------------------
@dataclass
class LoadGenConfig:
    """Shape of one load-generator run against one gateway."""

    clients: int = 2
    rounds: int = 6                   # requests per stream
    rate: float | None = None         # total requests/sec; None = closed-loop
    timeout: float = 120.0
    max_samples: int = 65536
    codec: str = "binary"             # preferred wire codec (negotiated)


@dataclass
class LoadGenResult:
    """Aggregate of one run: latency histogram, scores, and errors."""

    requests: int = 0
    windows: int = 0
    elapsed: float = 0.0
    rejected: int = 0                 # backpressure rejections
    errors: list[str] = field(default_factory=list)
    latency: LatencyHistogram | None = None
    # scores[stream] -> [(round_index, np.ndarray), ...] for parity
    # checking; rejected rounds are simply absent.
    scores: dict[str, list] = field(default_factory=dict)

    def summary(self, phase: str = "loadgen") -> dict:
        out = {
            "requests": self.requests,
            "windows": self.windows,
            "elapsed_seconds": self.elapsed,
            "requests_per_sec": self.requests / max(self.elapsed, 1e-9),
            "windows_per_sec": self.windows / max(self.elapsed, 1e-9),
            "rejected": self.rejected,
            "errors": len(self.errors),
        }
        if self.latency is not None and self.latency.count:
            out["latency"] = self.latency.summary(phase=phase)
        return out


class LoadGenerator:
    """Drive one gateway with ``clients`` concurrent connections.

    ``stream_windows`` maps stream names to their per-round arrival
    batches; every client owns a disjoint round-robin slice of the
    streams and sends each stream's rounds strictly in order, so the
    gateway sees the exact per-stream window sequence a direct
    ``fleet.step()`` run would.
    """

    def __init__(self, address: tuple[str, int],
                 stream_windows: dict[str, list[np.ndarray]],
                 config: LoadGenConfig | None = None, tracer=None):
        if not stream_windows:
            raise ConfigError("need at least one stream to drive")
        self.address = address
        self.stream_windows = stream_windows
        self.config = config or LoadGenConfig()
        if self.config.clients < 1:
            raise ConfigError("need at least one client")
        #: Shared :class:`repro.obs.TraceRecorder` handed to every
        #: client connection (the recorder's lock makes one instance
        #: safe across the client threads).
        self.tracer = tracer

    def run(self) -> LoadGenResult:
        cfg = self.config
        names = list(self.stream_windows)
        assignments = [names[i::cfg.clients] for i in range(cfg.clients)]
        assignments = [a for a in assignments if a]
        result = LoadGenResult(latency=LatencyHistogram(cfg.max_samples))
        start = time.perf_counter()
        # Open-loop pacing: request k (globally, across clients) is due
        # at start + k/rate.  Each client's requests are its slice of
        # that schedule, so the offered load hits the target rate
        # without any cross-thread coordination.
        interval = None if cfg.rate is None else 1.0 / cfg.rate
        # Each client fills its own LoadGenResult (own histogram); only
        # finished clients are merged, so a straggler past the join
        # timeout can never mutate the returned aggregate mid-read.
        parts = [LoadGenResult(latency=LatencyHistogram(cfg.max_samples))
                 for _ in assignments]
        threads = [threading.Thread(
            target=self._client_main,
            args=(index, streams, start, interval, len(assignments),
                  parts[index]),
            name=f"loadgen-{index}", daemon=True)
            for index, streams in enumerate(assignments)]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + cfg.timeout
        for index, thread in enumerate(threads):
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
            if thread.is_alive():
                result.errors.append(
                    f"client {index}: still running after the "
                    f"{cfg.timeout}s timeout; its results are discarded")
                continue
            part = parts[index]
            result.requests += part.requests
            result.windows += part.windows
            result.rejected += part.rejected
            result.errors.extend(part.errors)
            # merge(), not observe() over the reservoir: the aggregate
            # must report the true observation count, and re-observing
            # samples would cap "count" at the reservoir size.
            result.latency.merge(part.latency)
            for stream, served in part.scores.items():
                result.scores.setdefault(stream, []).extend(served)
        for served in result.scores.values():
            served.sort(key=lambda pair: pair[0])
        result.elapsed = time.perf_counter() - start
        return result

    def _client_main(self, index: int, streams: list[str], start: float,
                     interval: float | None, client_count: int,
                     part: LoadGenResult) -> None:
        cfg = self.config
        try:
            client = GatewayClient(*self.address, timeout=cfg.timeout,
                                   codec=cfg.codec, tracer=self.tracer)
        except OSError as exc:
            part.errors.append(f"client {index}: connect: {exc}")
            return
        sent = 0
        try:
            for stream in streams:
                client.attach(stream)
            for round_index in range(cfg.rounds):
                for stream in streams:
                    rounds = self.stream_windows[stream]
                    if round_index >= len(rounds):
                        continue
                    if interval is not None:
                        due = start + (sent * client_count + index) * interval
                        now = time.perf_counter()
                        if due > now:
                            time.sleep(due - now)
                    windows = rounds[round_index]
                    t0 = time.perf_counter()
                    try:
                        reply = client.ingest(stream, windows)
                    except GatewayError as exc:
                        if exc.code == "backpressure":
                            part.rejected += 1
                        else:
                            part.errors.append(
                                f"client {index}: {stream}"
                                f"[{round_index}]: {exc}")
                        sent += 1
                        continue
                    latency = time.perf_counter() - t0
                    sent += 1
                    part.requests += 1
                    part.windows += int(np.asarray(windows).shape[0])
                    part.latency.observe(latency)
                    part.scores.setdefault(stream, []).append(
                        (round_index, reply["scores_array"]))
        except (ConnectionError, FrameError, GatewayError, OSError) as exc:
            part.errors.append(f"client {index}: {exc}")
        finally:
            client.close()


# ---------------------------------------------------------------------
# The BENCH_5 harness
# ---------------------------------------------------------------------
def _direct_reference(pipeline, missions, streams, windows_per_step,
                      stream_seed, rounds, max_batch_windows):
    """(stream_windows, reference scores) from a direct in-process run.

    Builds the same fleet ``repro gateway`` would, pre-materializes each
    stream's arrival windows, and records ``fleet.step(batched=True)``
    scores round by round — the bit-parity bar every gateway run below
    must hit.
    """
    from ..serving import build_fleet

    fleet = build_fleet(pipeline, missions, streams,
                        adaptive=False, share_models=True,
                        windows_per_step=windows_per_step,
                        stream_seed=stream_seed,
                        max_batch_windows=max_batch_windows)
    available = min(len(slot.stream) for slot in fleet.slots)
    rounds = min(rounds, available)
    stream_windows = {
        slot.name: [np.asarray(slot.stream.batch(r).windows,
                               dtype=np.float64) for r in range(rounds)]
        for slot in fleet.slots}
    reference: dict[str, list[np.ndarray]] = {name: []
                                              for name in fleet.names}
    for _ in range(rounds):
        for event in fleet.step(batched=True):
            reference[event.stream].append(event.scores)
    return stream_windows, reference, rounds


def _check_parity(result: LoadGenResult,
                  reference: dict[str, list[np.ndarray]]) -> dict:
    """Every served response must match its round's direct-run scores
    bit for bit.  ``identical`` judges what was served; ``complete``
    additionally requires that nothing was rejected or dropped (an
    open-loop run past saturation is expected to shed load, which is
    admission control working, not a parity failure)."""
    identical = True
    max_abs_diff = 0.0
    compared = 0
    missing = 0
    for name, expected_rounds in reference.items():
        served = result.scores.get(name, [])
        missing += len(expected_rounds) - len(served)
        for round_index, got in served:
            compared += 1
            expected = expected_rounds[round_index]
            if not np.array_equal(got, expected):
                identical = False
                max_abs_diff = max(max_abs_diff,
                                   float(np.abs(got - expected).max()))
    return {"identical": identical, "max_abs_diff": max_abs_diff,
            "responses_compared": compared, "missing_responses": missing,
            "complete": missing == 0}


def run_gateway_benchmark(pipeline, streams: int = 4,
                          missions: list[str] | None = None,
                          windows_per_step: int = 2, rounds: int = 6,
                          levels: tuple[int, ...] = (1, 2, 4),
                          rate: float | None = None,
                          stream_seed: int = 100,
                          max_batch_windows: int | None = None,
                          max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH,
                          policy=None, codec: str = "binary",
                          trace_dir=None, shards: int = 0) -> dict:
    """Latency/throughput curve over client-concurrency levels.

    For each level a *fresh* fleet (same build arguments, hence the same
    streams and models) is served by an in-thread gateway and driven by
    ``level`` concurrent client connections replaying the identical
    pre-materialized windows; every response is checked bit-for-bit
    against the direct in-process reference, and the server's ``stats``
    op is snapshotted after the run so the engine's promoted metrics
    (rounds, coalesce ratio, queue gauges) land in the artifact.  The
    returned payload is the ``BENCH_5.json`` artifact.  ``policy`` names
    the engine scheduling policy (default: fair round-robin) — any
    policy serves bit-identical scores, so the curve stays parity-gated.

    ``trace_dir`` turns on end-to-end tracing: one shared
    :class:`repro.obs.TraceRecorder` collects client, gateway, engine,
    shard, and WAL spans across every level, exported afterwards as
    ``trace.jsonl`` plus a Chrome-loadable ``trace_chrome.json``.
    ``shards`` > 0 serves each level from a sharded fleet (that many
    worker processes) instead of an inline one — the reference run stays
    inline, so the parity gate also witnesses inline/sharded parity.
    """
    from ..serving import build_fleet, build_sharded_fleet
    from ..serving.bench import _environment

    missions = missions or ["Stealing"]
    stream_windows, reference, rounds = _direct_reference(
        pipeline, missions, streams, windows_per_step, stream_seed,
        rounds, max_batch_windows)
    recorder = None
    if trace_dir is not None:
        from ..obs import TraceRecorder
        recorder = TraceRecorder()
    level_results: dict[str, dict] = {}
    all_identical = True
    for level in levels:
        if shards:
            fleet = build_sharded_fleet(
                pipeline, missions, streams, shards,
                adaptive=False, share_models=True,
                windows_per_step=windows_per_step,
                stream_seed=stream_seed,
                max_batch_windows=max_batch_windows)
        else:
            fleet = build_fleet(pipeline, missions, streams,
                                adaptive=False, share_models=True,
                                windows_per_step=windows_per_step,
                                stream_seed=stream_seed,
                                max_batch_windows=max_batch_windows)
        with fleet, serve_in_thread(fleet, max_queue_depth=max_queue_depth,
                                    policy=policy,
                                    tracer=recorder) as handle:
            generator = LoadGenerator(
                handle.address, stream_windows,
                LoadGenConfig(clients=level, rounds=rounds, rate=rate,
                              codec=codec),
                tracer=recorder)
            result = generator.run()
            with GatewayClient(*handle.address) as observer:
                server_stats = observer.stats()
        parity = _check_parity(result, reference)
        all_identical = all_identical and parity["identical"] \
            and not result.errors
        stats = result.summary(phase=f"{level}-client gateway")
        stats["parity"] = parity
        stats["server"] = {"engine": server_stats.get("engine"),
                           "metrics": server_stats.get("metrics")}
        if result.errors:
            stats["error_messages"] = result.errors[:10]
        level_results[str(level)] = stats
    trace_summary = None
    if recorder is not None:
        from pathlib import Path

        from ..obs import stage_summary, write_chrome_trace, write_jsonl
        out = Path(trace_dir)
        out.mkdir(parents=True, exist_ok=True)
        spans = recorder.snapshot()
        trace_summary = {
            "spans": write_jsonl(spans, out / "trace.jsonl"),
            "dropped": recorder.dropped,
            "jsonl": str(out / "trace.jsonl"),
            "chrome": str(out / "trace_chrome.json"),
            "stages": stage_summary(spans),
        }
        write_chrome_trace(spans, out / "trace_chrome.json")
    return {
        "benchmark": "gateway_serving",
        "config": {
            "streams": streams,
            "missions": list(missions),
            "windows_per_step": windows_per_step,
            "rounds": rounds,
            "levels": [int(level) for level in levels],
            "rate": rate,
            "stream_seed": stream_seed,
            "max_batch_windows": max_batch_windows,
            "max_queue_depth": max_queue_depth,
            "policy": getattr(policy, "name", policy) or "fair",
            "codec": codec,
            "shards": shards,
        },
        "levels": level_results,
        "trace": trace_summary,
        "parity": {"identical": all_identical},
        "environment": _environment(),
    }


# ---------------------------------------------------------------------
# The BENCH_6 harness: durability overhead A/B
# ---------------------------------------------------------------------
def run_durability_benchmark(pipeline, streams: int = 4,
                             missions: list[str] | None = None,
                             windows_per_step: int = 2, rounds: int = 6,
                             clients: int = 2, rate: float | None = None,
                             stream_seed: int = 100,
                             max_batch_windows: int | None = None,
                             max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH,
                             policy=None, wal_dir=None,
                             wal_config=None) -> dict:
    """A/B profile of WAL durability overhead (the ``BENCH_6.json``
    artifact): the identical pre-materialized load is served twice —
    once by a plain gateway, once by a gateway with ``wal_dir`` set
    (log-before-schedule, group-commit fsync per round) — and the
    latency/throughput deltas are recorded.  Both runs stay parity-gated
    against the direct in-process reference, and after the durable run
    the WAL is recovered and its stream set checked, so the artifact
    also witnesses that the log it paid for is actually recoverable.
    """
    import shutil
    import tempfile
    from pathlib import Path

    from ..serving import build_fleet
    from ..serving.bench import _environment

    missions = missions or ["Stealing"]
    stream_windows, reference, rounds = _direct_reference(
        pipeline, missions, streams, windows_per_step, stream_seed,
        rounds, max_batch_windows)

    def run_side(wal_path) -> dict:
        fleet = build_fleet(pipeline, missions, streams,
                            adaptive=False, share_models=True,
                            windows_per_step=windows_per_step,
                            stream_seed=stream_seed,
                            max_batch_windows=max_batch_windows)
        server_kwargs = dict(max_queue_depth=max_queue_depth, policy=policy)
        if wal_path is not None:
            server_kwargs.update(wal_dir=wal_path, wal_config=wal_config)
        with fleet, serve_in_thread(fleet, **server_kwargs) as handle:
            generator = LoadGenerator(
                handle.address, stream_windows,
                LoadGenConfig(clients=clients, rounds=rounds, rate=rate))
            result = generator.run()
            with GatewayClient(*handle.address) as observer:
                server_stats = observer.stats()
        stats = result.summary(
            phase=("durable" if wal_path is not None else "baseline")
            + " gateway")
        stats["parity"] = _check_parity(result, reference)
        stats["server"] = {"engine": server_stats.get("engine"),
                           "metrics": server_stats.get("metrics")}
        if result.errors:
            stats["error_messages"] = result.errors[:10]
        return stats

    baseline = run_side(None)
    created_dir = wal_dir is None
    wal_path = Path(wal_dir) if wal_dir is not None \
        else Path(tempfile.mkdtemp(prefix="repro-wal-bench-"))
    durable = run_side(wal_path)

    # The durable side's acks are only worth their fsyncs if the log
    # recovers: rebuild the fleet from it and check the stream set.
    from ..wal import recover_fleet
    recovered, report = recover_fleet(wal_path)
    try:
        recovery = {"ok": sorted(recovered.names) == sorted(stream_windows),
                    "records": report.records, "replayed": report.replayed,
                    "duration_seconds": report.duration}
    finally:
        recovered.close()
    if created_dir:
        shutil.rmtree(wal_path, ignore_errors=True)

    def _pct(stats: dict, key: str) -> float | None:
        latency = stats.get("latency") or {}
        return latency.get(key)

    overhead: dict = {}
    for key in ("p50_ms", "p95_ms", "p99_ms"):
        base, dur = _pct(baseline, key), _pct(durable, key)
        if base is not None and dur is not None:
            overhead[f"{key.removesuffix('_ms')}_delta_ms"] = dur - base
    if baseline["windows_per_sec"] > 0:
        overhead["throughput_ratio"] = (durable["windows_per_sec"]
                                        / baseline["windows_per_sec"])
    wal_metrics = ((durable.get("server") or {}).get("metrics")
                   or {})
    histograms = wal_metrics.get("histograms") or {}
    counters = wal_metrics.get("counters") or {}
    overhead["fsyncs"] = counters.get("wal.fsyncs")
    overhead["wal_records"] = counters.get("wal.records")
    if (histograms.get("wal.fsync_latency") or {}).get("count"):
        overhead["fsync_p95_ms"] = histograms["wal.fsync_latency"]["p95_ms"]
    if (histograms.get("wal.append_latency") or {}).get("count"):
        overhead["append_p95_ms"] = \
            histograms["wal.append_latency"]["p95_ms"]

    return {
        "benchmark": "gateway_durability",
        "config": {
            "streams": streams,
            "missions": list(missions),
            "windows_per_step": windows_per_step,
            "rounds": rounds,
            "clients": clients,
            "rate": rate,
            "stream_seed": stream_seed,
            "max_batch_windows": max_batch_windows,
            "max_queue_depth": max_queue_depth,
            "policy": getattr(policy, "name", policy) or "fair",
            "fsync_batch": getattr(wal_config, "fsync_batch", None),
            "fsync_interval_ms": getattr(wal_config, "fsync_interval_ms",
                                         None),
        },
        "baseline": baseline,
        "durable": durable,
        "overhead": overhead,
        "recovery": recovery,
        "parity": {"identical": baseline["parity"]["identical"]
                   and durable["parity"]["identical"]},
        "environment": _environment(),
    }


def format_durability_benchmark(result: dict) -> str:
    """Human-readable one-screen summary of a BENCH_6 payload."""
    cfg = result["config"]
    lines = [
        f"gateway durability benchmark: {cfg['streams']} stream(s) x "
        f"{cfg['windows_per_step']} windows/request, {cfg['rounds']} "
        f"round(s)/stream, {cfg['clients']} client(s)",
    ]
    for side in ("baseline", "durable"):
        stats = result[side]
        latency = stats.get("latency", {})
        lines.append(
            f"  {side:>8s}: {stats['windows_per_sec']:8.1f} windows/s"
            f"   p50 {latency.get('p50_ms', float('nan')):7.2f} ms"
            f"   p95 {latency.get('p95_ms', float('nan')):7.2f} ms"
            f"   identical: {stats['parity']['identical']}")
    over = result["overhead"]
    parts = []
    if "p50_delta_ms" in over:
        parts.append(f"p50 +{over['p50_delta_ms']:.2f} ms")
    if "p95_delta_ms" in over:
        parts.append(f"p95 +{over['p95_delta_ms']:.2f} ms")
    if "throughput_ratio" in over:
        parts.append(f"throughput x{over['throughput_ratio']:.3f}")
    if over.get("fsyncs") is not None:
        parts.append(f"{over['fsyncs']:.0f} fsync(s)")
    if parts:
        lines.append(f"  overhead: {', '.join(parts)}")
    recovery = result["recovery"]
    lines.append(f"  recovery: ok={recovery['ok']} "
                 f"({recovery['records']} record(s), "
                 f"{recovery['duration_seconds'] * 1e3:.1f} ms)")
    lines.append(f"  parity (both sides): {result['parity']['identical']}")
    return "\n".join(lines)


def _format_server_stats(stats: dict | None) -> str | None:
    """One line of promoted engine metrics from a level's ``stats`` op
    snapshot: rounds, coalesce ratio, queue-depth gauge."""
    if not stats:
        return None
    engine = stats.get("engine") or {}
    metrics = stats.get("metrics") or {}
    parts = [f"engine rounds {engine.get('rounds', 0)}",
             f"policy {engine.get('policy', '?')}"]
    coalesce = engine.get("coalesce")
    if coalesce:
        parts.append(
            f"{coalesce['windows_per_forward']:.2f} windows/forward "
            f"({coalesce['windows_scored']} windows, "
            f"{coalesce['batches_run']} forward(s))")
    gauges = metrics.get("gauges") or {}
    if "engine.queue_depth" in gauges:
        parts.append(f"queue depth {gauges['engine.queue_depth']:.0f}")
    histograms = metrics.get("histograms") or {}
    round_latency = histograms.get("engine.round_latency") or {}
    if round_latency.get("count"):
        parts.append(f"round p95 {round_latency['p95_ms']:.2f} ms")
    return ", ".join(parts)


def format_gateway_benchmark(result: dict) -> str:
    """Human-readable one-screen summary of a BENCH_5 payload."""
    cfg = result["config"]
    lines = [
        f"gateway serving benchmark: {cfg['streams']} stream(s) x "
        f"{cfg['windows_per_step']} windows/request, {cfg['rounds']} "
        f"round(s)/stream, levels {cfg['levels']}"
        + (f", policy {cfg['policy']}" if cfg.get("policy") else "")
        + (f", open-loop {cfg['rate']:.0f} req/s" if cfg["rate"] else ""),
    ]
    for level, stats in result["levels"].items():
        latency = stats.get("latency", {})
        note = "" if not stats["rejected"] else \
            f"   ({stats['rejected']} backpressure rejection(s))"
        lines.append(
            f"  {level:>2s} client(s): {stats['windows_per_sec']:8.1f} "
            f"windows/s   p50 {latency.get('p50_ms', float('nan')):7.2f} ms"
            f"   p95 {latency.get('p95_ms', float('nan')):7.2f} ms"
            f"   p99 {latency.get('p99_ms', float('nan')):7.2f} ms"
            f"   identical: {stats['parity']['identical']}{note}")
        server_line = _format_server_stats(stats.get("server"))
        if server_line:
            lines.append(f"              server: {server_line}")
    trace = result.get("trace")
    if trace:
        lines.append(f"  trace: {trace['spans']} span(s) "
                     f"({trace['dropped']} dropped) -> {trace['jsonl']}")
    lines.append(f"  parity (all levels): {result['parity']['identical']}")
    return "\n".join(lines)


# ---------------------------------------------------------------------
# The BENCH_7 harness: wire codec A/B
# ---------------------------------------------------------------------
def run_codec_ab_benchmark(pipeline, streams: int = 4,
                           missions: list[str] | None = None,
                           windows_per_step: int = 2,
                           large_windows_per_step: int = 8,
                           rounds: int = 6,
                           levels: tuple[int, ...] = (1, 4),
                           rate: float | None = None,
                           stream_seed: int = 100,
                           max_batch_windows: int | None = None,
                           max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH,
                           policy=None, shards: int = 2) -> dict:
    """Codec A/B curve (the ``BENCH_7.json`` artifact).

    Two window profiles — ``small`` (``windows_per_step``) and ``large``
    (``large_windows_per_step``, where serialization cost dominates) —
    are each served over JSON frames and over binary frames at every
    client-concurrency level, always against a *fresh* fleet replaying
    identical pre-materialized windows, and always checked bit-for-bit
    against the direct in-process reference.  The ``delta`` section
    records binary-vs-JSON p50 and throughput ratios per level; the
    ``gate`` section holds the two regression predicates CI enforces
    (binary p50 ≤ JSON p50 on the large profile; ≥1.2x throughput or
    lower p50 at the top level).  A sharded side (``shards`` workers
    over the shared-memory ring transport, binary codec) rides along,
    gated on the same reference — the proof that codec and transport
    changes compose without perturbing a single score bit.
    """
    from ..serving import build_fleet, build_sharded_fleet
    from ..serving.bench import _environment

    missions = missions or ["Stealing"]
    top_level = str(max(levels))

    def run_side(fleet_factory, stream_windows, reference, profile_rounds,
                 codec, level, phase) -> dict:
        fleet = fleet_factory()
        with fleet, serve_in_thread(fleet, max_queue_depth=max_queue_depth,
                                    policy=policy) as handle:
            generator = LoadGenerator(
                handle.address, stream_windows,
                LoadGenConfig(clients=level, rounds=profile_rounds,
                              rate=rate, codec=codec))
            result = generator.run()
            with GatewayClient(*handle.address) as observer:
                server_stats = observer.stats()
        stats = result.summary(phase=phase)
        stats["parity"] = _check_parity(result, reference)
        counters = ((server_stats.get("metrics") or {}).get("counters")
                    or {})
        stats["server_frames"] = {
            wire: counters.get(f"gateway.frames.{wire}") for wire in CODECS}
        if result.errors:
            stats["error_messages"] = result.errors[:10]
        return stats

    profiles: dict[str, dict] = {}
    all_identical = True
    small_profile_data = None
    for name, wps in (("small", windows_per_step),
                      ("large", large_windows_per_step)):
        stream_windows, reference, profile_rounds = _direct_reference(
            pipeline, missions, streams, wps, stream_seed, rounds,
            max_batch_windows)
        if name == "small":
            small_profile_data = (stream_windows, reference, profile_rounds,
                                  wps)

        def factory(wps=wps):
            return build_fleet(pipeline, missions, streams,
                               adaptive=False, share_models=True,
                               windows_per_step=wps,
                               stream_seed=stream_seed,
                               max_batch_windows=max_batch_windows)

        codec_stats: dict[str, dict] = {}
        for codec in CODECS:
            codec_stats[codec] = {}
            for level in levels:
                stats = run_side(factory, stream_windows, reference,
                                 profile_rounds, codec, level,
                                 f"{name}/{codec}/{level}-client")
                codec_stats[codec][str(level)] = stats
                all_identical = all_identical \
                    and stats["parity"]["identical"] \
                    and "error_messages" not in stats
        delta: dict[str, dict] = {}
        for level in levels:
            json_side = codec_stats["json"][str(level)]
            binary_side = codec_stats["binary"][str(level)]
            entry: dict = {}
            json_p50 = (json_side.get("latency") or {}).get("p50_ms")
            binary_p50 = (binary_side.get("latency") or {}).get("p50_ms")
            if json_p50 is not None and binary_p50 is not None:
                entry["p50_delta_ms"] = binary_p50 - json_p50
                if json_p50 > 0:
                    entry["p50_ratio"] = binary_p50 / json_p50
            if json_side["windows_per_sec"] > 0:
                entry["throughput_ratio"] = \
                    binary_side["windows_per_sec"] \
                    / json_side["windows_per_sec"]
            delta[str(level)] = entry
        profiles[name] = {"windows_per_step": wps, "rounds": profile_rounds,
                          "codecs": codec_stats, "delta": delta}

    # The sharded side: same small-profile load, binary codec, served by
    # a fleet partitioned across worker processes whose parent<->worker
    # traffic rides the shared-memory ring transport.
    sharded = None
    if shards:
        stream_windows, reference, profile_rounds, wps = small_profile_data

        def sharded_factory():
            return build_sharded_fleet(pipeline, missions, streams, shards,
                                       adaptive=False, share_models=True,
                                       windows_per_step=wps,
                                       stream_seed=stream_seed,
                                       max_batch_windows=max_batch_windows)

        stats = run_side(sharded_factory, stream_windows, reference,
                         profile_rounds, "binary", max(levels),
                         f"sharded({shards})/binary/{top_level}-client")
        all_identical = all_identical and stats["parity"]["identical"] \
            and "error_messages" not in stats
        sharded = {"shards": shards, "codec": "binary",
                   "clients": max(levels), "stats": stats}

    large_top = profiles["large"]["delta"].get(top_level, {})
    small_top = profiles["small"]["delta"].get(top_level, {})
    p50_delta = large_top.get("p50_delta_ms")
    throughput_ratio = large_top.get("throughput_ratio")
    gate = {
        # CI regression gate: on the large-window profile (serialization
        # bound), binary must not be slower than JSON at the top level.
        "large_p50_binary_le_json":
            p50_delta is not None and p50_delta <= 0.0,
        # Acceptance: >=1.2x throughput or lower p50 at the top level,
        # on either profile (the large one is where the codec earns it).
        "top_level_speedup": {
            "large_throughput_ratio": throughput_ratio,
            "large_p50_delta_ms": p50_delta,
            "small_throughput_ratio": small_top.get("throughput_ratio"),
            "small_p50_delta_ms": small_top.get("p50_delta_ms"),
            "ok": (throughput_ratio is not None
                   and throughput_ratio >= 1.2)
            or (p50_delta is not None and p50_delta < 0.0),
        },
    }
    return {
        "benchmark": "codec_ab",
        "config": {
            "streams": streams,
            "missions": list(missions),
            "windows_per_step": windows_per_step,
            "large_windows_per_step": large_windows_per_step,
            "rounds": rounds,
            "levels": [int(level) for level in levels],
            "rate": rate,
            "stream_seed": stream_seed,
            "max_batch_windows": max_batch_windows,
            "max_queue_depth": max_queue_depth,
            "policy": getattr(policy, "name", policy) or "fair",
            "shards": shards,
        },
        "profiles": profiles,
        "sharded": sharded,
        "gate": gate,
        "parity": {"identical": all_identical},
        "environment": _environment(),
    }


def format_codec_ab_benchmark(result: dict) -> str:
    """Human-readable one-screen summary of a BENCH_7 payload."""
    cfg = result["config"]
    lines = [
        f"wire codec A/B benchmark: {cfg['streams']} stream(s), "
        f"{cfg['rounds']} round(s)/stream, levels {cfg['levels']}, "
        f"profiles small={cfg['windows_per_step']} / "
        f"large={cfg['large_windows_per_step']} windows/request",
    ]
    for name, profile in result["profiles"].items():
        lines.append(f"  {name} profile "
                     f"({profile['windows_per_step']} windows/request):")
        for codec, per_level in profile["codecs"].items():
            for level, stats in per_level.items():
                latency = stats.get("latency", {})
                lines.append(
                    f"    {codec:>6s} x{level} client(s): "
                    f"{stats['windows_per_sec']:8.1f} windows/s"
                    f"   p50 {latency.get('p50_ms', float('nan')):7.2f} ms"
                    f"   p95 {latency.get('p95_ms', float('nan')):7.2f} ms"
                    f"   identical: {stats['parity']['identical']}")
        for level, entry in profile["delta"].items():
            parts = []
            if "throughput_ratio" in entry:
                parts.append(f"throughput x{entry['throughput_ratio']:.3f}")
            if "p50_delta_ms" in entry:
                parts.append(f"p50 {entry['p50_delta_ms']:+.2f} ms")
            if parts:
                lines.append(f"    binary vs json @{level} client(s): "
                             f"{', '.join(parts)}")
    sharded = result.get("sharded")
    if sharded:
        stats = sharded["stats"]
        latency = stats.get("latency", {})
        lines.append(
            f"  sharded ({sharded['shards']} shard(s), shm rings, "
            f"{sharded['codec']}): {stats['windows_per_sec']:8.1f} "
            f"windows/s   p50 {latency.get('p50_ms', float('nan')):7.2f} ms"
            f"   identical: {stats['parity']['identical']}")
    gate = result["gate"]
    lines.append(f"  gate: large-profile p50 binary<=json: "
                 f"{gate['large_p50_binary_le_json']}, top-level speedup "
                 f"ok: {gate['top_level_speedup']['ok']}")
    lines.append(f"  parity (all runs): {result['parity']['identical']}")
    return "\n".join(lines)

# ---------------------------------------------------------------------
# The BENCH_10 harness: pipelined rounds A/B
# ---------------------------------------------------------------------
def _pipelined_crash_drill(pipeline, missions, streams, windows_per_step,
                           stream_seed, rounds, max_batch_windows,
                           wal_config) -> dict:
    """Crash-recovery drill against a *pipelined* engine: serve durable
    rounds with the committer thread doing the fsyncs, drain, then
    abandon the WAL without any clean close (no parting snapshot, no
    final flush beyond what the committer already fsynced — the SIGKILL
    stand-in) and recover it.  Every ingest acked through ``on_commit``
    must come back from replay bit-identically: acks only ever resolve
    after the fsync covering them, so a crash can lose unacked tail
    work but never an acked ingest.
    """
    import shutil
    import tempfile
    from pathlib import Path

    from ..runtime import EngineRequest
    from ..serving import build_fleet
    from ..wal import WalDurability, recover_fleet

    fleet = build_fleet(pipeline, missions, streams,
                        adaptive=False, share_models=True,
                        windows_per_step=windows_per_step,
                        stream_seed=stream_seed,
                        max_batch_windows=max_batch_windows)
    wal_path = Path(tempfile.mkdtemp(prefix="repro-pipeline-drill-"))
    durability = WalDurability(fleet, wal_path, config=wal_config)
    engine = fleet.engine
    engine.durability = durability
    engine.pipeline = True
    acked: dict[str, list[np.ndarray]] = {name: []
                                          for name in fleet.names}

    def on_commit(results) -> None:
        for result in results:
            if result.kind == "event":
                acked[result.request.stream].append(result.event.scores)

    engine.on_commit = on_commit
    available = min(len(slot.stream) for slot in fleet.slots)
    rounds = min(rounds, available)
    windows = {slot.name: [np.asarray(slot.stream.batch(r).windows,
                                      dtype=np.float64)
                           for r in range(rounds)]
               for slot in fleet.slots}
    for round_index in range(rounds):
        for name in fleet.names:
            engine.submit(EngineRequest(
                op="ingest", stream=name,
                windows=windows[name][round_index]))
        engine.run_round()
    engine.stop_committer()
    # "Crash": durability is never closed — recovery sees exactly what
    # the committer fsynced, nothing more.
    recovered, report = recover_fleet(wal_path)
    acked_count = sum(len(scores) for scores in acked.values())
    compared = 0
    ok = True
    for name, mine in acked.items():
        replayed = report.scores.get(name, [])
        if len(replayed) < len(mine):
            ok = False
        for got, expected in zip(replayed, mine):
            compared += 1
            if not np.array_equal(got, expected):
                ok = False
    recovered.close()
    shutil.rmtree(wal_path, ignore_errors=True)
    return {"ok": ok and compared == acked_count,
            "acked": acked_count, "compared": compared,
            "records": report.records, "replayed": report.replayed,
            "duration_seconds": report.duration}


def run_pipeline_ab_benchmark(pipeline, streams: int = 4,
                              missions: list[str] | None = None,
                              windows_per_step: int = 2, rounds: int = 6,
                              clients: int = 2, rate: float | None = None,
                              stream_seed: int = 100,
                              max_batch_windows: int | None = None,
                              max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH,
                              policy=None, shards: int = 2,
                              wal_config=None) -> dict:
    """A/B profile of pipelined rounds (the ``BENCH_10.json`` artifact).

    Two measurements over the identical pre-materialized load:

    * a **parity matrix** — serial vs pipelined x json vs binary frames
      x inline vs ``shards``-way sharded fleet (the sharded cells also
      exercise the fused ``serve_round`` scatter), every cell checked
      bit-for-bit against the direct in-process reference;
    * a **WAL A/B** — the same durable load served by a serial and a
      pipelined gateway at a fixed offered rate (calibrated to ~95% of
      the serial gateway's closed-loop capacity unless ``rate`` is
      given), recording what overlapping the group-commit fsync with
      the next round's compute buys in p50 and throughput (the headline
      gate: pipelined p50 <= serial p50, throughput >= serial, with the
      WAL on).

    Plus a crash-recovery drill against a pipelined engine (fsyncs on
    the committer thread, no clean close, replay must return every
    acked ingest) — see :func:`_pipelined_crash_drill`.
    """
    import shutil
    import tempfile
    from pathlib import Path

    from ..serving import build_fleet, build_sharded_fleet
    from ..serving.bench import _environment

    missions = missions or ["Stealing"]
    stream_windows, reference, rounds = _direct_reference(
        pipeline, missions, streams, windows_per_step, stream_seed,
        rounds, max_batch_windows)

    def run_side(pipelined: bool, codec: str = "binary",
                 shard_count: int = 0, wal_path=None,
                 rate_override: float | None = None) -> dict:
        if shard_count:
            fleet = build_sharded_fleet(
                pipeline, missions, streams, shard_count,
                adaptive=False, share_models=True,
                windows_per_step=windows_per_step,
                stream_seed=stream_seed,
                max_batch_windows=max_batch_windows)
        else:
            fleet = build_fleet(pipeline, missions, streams,
                                adaptive=False, share_models=True,
                                windows_per_step=windows_per_step,
                                stream_seed=stream_seed,
                                max_batch_windows=max_batch_windows)
        server_kwargs = dict(max_queue_depth=max_queue_depth,
                             policy=policy, pipeline=pipelined)
        if wal_path is not None:
            server_kwargs.update(wal_dir=wal_path, wal_config=wal_config)
        with fleet, serve_in_thread(fleet, **server_kwargs) as handle:
            generator = LoadGenerator(
                handle.address, stream_windows,
                LoadGenConfig(clients=clients, rounds=rounds,
                              rate=rate_override if rate_override
                              is not None else rate,
                              codec=codec))
            result = generator.run()
            with GatewayClient(*handle.address) as observer:
                server_stats = observer.stats()
        mode = "pipelined" if pipelined else "serial"
        stats = result.summary(phase=f"{mode} gateway ({codec}, "
                                     f"{shard_count or 'inline'})")
        stats["parity"] = _check_parity(result, reference)
        stats["server"] = {"engine": server_stats.get("engine"),
                           "metrics": server_stats.get("metrics")}
        if result.errors:
            stats["error_messages"] = result.errors[:10]
        return stats

    # The parity matrix: serial/pipelined x json/binary x inline/sharded,
    # WAL off (the WAL A/B below covers the durable path).
    matrix: dict[str, dict] = {}
    all_identical = True
    for pipelined in (False, True):
        for codec in ("json", "binary"):
            for shard_count in (0, shards):
                key = (f"{'pipelined' if pipelined else 'serial'}"
                       f"|{codec}|{shard_count or 'inline'}")
                cell = run_side(pipelined, codec=codec,
                                shard_count=shard_count)
                matrix[key] = cell
                all_identical = all_identical \
                    and cell["parity"]["identical"] \
                    and "error_messages" not in cell

    # The WAL A/B: identical durable load, serial vs pipelined acks.
    # Closed-loop lockstep cannot show what pipelining buys — every
    # client blocks on the ack its own round's fsync gates, so there is
    # never queued work for the fsync to overlap with.  Group commit
    # pipelining targets *sustained offered load*: calibrate the serial
    # gateway's closed-loop capacity first, then rate-pace both sides
    # just under it, where serial mode's inline fsync surfaces as
    # queueing delay and the pipelined round loop's extra capacity
    # absorbs it.
    def durable_side(pipelined: bool,
                     rate_override: float | None = None) -> dict:
        wal_path = Path(tempfile.mkdtemp(prefix="repro-pipeline-wal-"))
        try:
            return run_side(pipelined, wal_path=wal_path,
                            rate_override=rate_override)
        finally:
            shutil.rmtree(wal_path, ignore_errors=True)

    calibration = durable_side(False)
    paced_rate = rate
    if paced_rate is None:
        paced_rate = 0.95 * calibration["requests_per_sec"]
    wal_sides: dict[str, dict] = {}
    for mode, pipelined in (("serial", False), ("pipelined", True)):
        wal_sides[mode] = durable_side(pipelined,
                                       rate_override=paced_rate)
        all_identical = all_identical \
            and wal_sides[mode]["parity"]["identical"] \
            and "error_messages" not in wal_sides[mode]
    all_identical = all_identical and calibration["parity"]["identical"] \
        and "error_messages" not in calibration

    def _p50(stats: dict) -> float | None:
        return (stats.get("latency") or {}).get("p50_ms")

    serial_wal, pipelined_wal = wal_sides["serial"], wal_sides["pipelined"]
    delta: dict = {}
    serial_p50, pipelined_p50 = _p50(serial_wal), _p50(pipelined_wal)
    if serial_p50 is not None and pipelined_p50 is not None:
        delta["p50_delta_ms"] = pipelined_p50 - serial_p50
    if serial_wal["windows_per_sec"] > 0:
        delta["throughput_ratio"] = (pipelined_wal["windows_per_sec"]
                                     / serial_wal["windows_per_sec"])

    recovery = _pipelined_crash_drill(
        pipeline, missions, streams, windows_per_step, stream_seed,
        rounds, max_batch_windows, wal_config)

    gate = {
        "wal_p50_pipelined_le_serial": (
            serial_p50 is not None and pipelined_p50 is not None
            and pipelined_p50 <= serial_p50),
        "wal_throughput_ge_serial": delta.get("throughput_ratio", 0.0)
        >= 1.0,
        "all_cells_identical": all_identical,
        "recovery_ok": recovery["ok"],
    }

    # The pipelined durable side's engine stats carry the new pipeline
    # gauges (commit backlog, committer queue depth, fused round-trips).
    pipeline_stats = ((pipelined_wal.get("server") or {})
                      .get("engine") or {}).get("pipeline")

    return {
        "benchmark": "gateway_pipeline_ab",
        "config": {
            "streams": streams,
            "missions": list(missions),
            "windows_per_step": windows_per_step,
            "rounds": rounds,
            "clients": clients,
            "rate": rate,
            "stream_seed": stream_seed,
            "max_batch_windows": max_batch_windows,
            "max_queue_depth": max_queue_depth,
            "policy": getattr(policy, "name", policy) or "fair",
            "shards": shards,
            "fsync_batch": getattr(wal_config, "fsync_batch", None),
            "fsync_interval_ms": getattr(wal_config, "fsync_interval_ms",
                                         None),
        },
        "matrix": matrix,
        "wal": {"calibration": calibration, "paced_rate": paced_rate,
                "serial": serial_wal, "pipelined": pipelined_wal,
                "delta": delta},
        "pipeline_stats": pipeline_stats,
        "recovery": recovery,
        "gate": gate,
        "parity": {"identical": all_identical},
        "environment": _environment(),
    }


def format_pipeline_ab_benchmark(result: dict) -> str:
    """Human-readable one-screen summary of a BENCH_10 payload."""
    cfg = result["config"]
    lines = [
        f"pipelined rounds A/B benchmark: {cfg['streams']} stream(s) x "
        f"{cfg['windows_per_step']} windows/request, {cfg['rounds']} "
        f"round(s)/stream, {cfg['clients']} client(s), "
        f"{cfg['shards']} shard(s) in sharded cells",
        "  parity matrix (WAL off):",
    ]
    for key, stats in result["matrix"].items():
        latency = stats.get("latency", {})
        lines.append(
            f"    {key:>26s}: {stats['windows_per_sec']:8.1f} windows/s"
            f"   p50 {latency.get('p50_ms', float('nan')):7.2f} ms"
            f"   identical: {stats['parity']['identical']}")
    rate = result["wal"].get("paced_rate")
    lines.append(f"  WAL A/B (binary, inline, paced at "
                 f"{rate:.0f} req/s):" if rate
                 else "  WAL A/B (binary, inline):")
    for mode in ("serial", "pipelined"):
        stats = result["wal"][mode]
        latency = stats.get("latency", {})
        lines.append(
            f"    {mode:>9s}: {stats['windows_per_sec']:8.1f} windows/s"
            f"   p50 {latency.get('p50_ms', float('nan')):7.2f} ms"
            f"   p95 {latency.get('p95_ms', float('nan')):7.2f} ms"
            f"   identical: {stats['parity']['identical']}")
    delta = result["wal"]["delta"]
    parts = []
    if "p50_delta_ms" in delta:
        parts.append(f"p50 {delta['p50_delta_ms']:+.2f} ms")
    if "throughput_ratio" in delta:
        parts.append(f"throughput x{delta['throughput_ratio']:.3f}")
    if parts:
        lines.append(f"    pipelined vs serial: {', '.join(parts)}")
    stats = result.get("pipeline_stats")
    if stats:
        lines.append(f"  pipeline: {stats.get('commit_batches', 0)} "
                     f"commit batch(es), backlog "
                     f"{stats.get('commit_backlog', 0)}"
                     + (f", {stats['fused_rounds']} fused round(s)"
                        if "fused_rounds" in stats else ""))
    recovery = result["recovery"]
    lines.append(f"  crash drill: ok={recovery['ok']} "
                 f"({recovery['acked']} acked ingest(s), "
                 f"{recovery['replayed']} replayed, "
                 f"{recovery['duration_seconds'] * 1e3:.1f} ms)")
    gate = result["gate"]
    lines.append(f"  gate: wal p50 pipelined<=serial: "
                 f"{gate['wal_p50_pipelined_le_serial']}, throughput>=1: "
                 f"{gate['wal_throughput_ge_serial']}, recovery: "
                 f"{gate['recovery_ok']}")
    lines.append(f"  parity (all cells): {result['parity']['identical']}")
    return "\n".join(lines)
