"""The ``Pipeline`` facade: one object that owns the whole stack.

``Pipeline`` lazily assembles ontology -> joint embedding model -> LLM
oracle -> mission KG -> trained GNN decision model from a single
:class:`ReproConfig`, keeps trained models in a :class:`ModelRegistry`
(optionally persisted on disk), and hands out :class:`Deployment` runtime
objects for the edge side::

    from repro.api import Pipeline, ReproConfig

    pipe = Pipeline.from_config(ReproConfig())
    model = pipe.train("Stealing")                 # cloud-side, cached
    deployment = pipe.deploy("Stealing")           # edge-side runtime
    for event in deployment.serve(pipe.stream("Stealing", "Robbery")):
        print(event.step, event.scores.mean())
"""

from __future__ import annotations

import copy
import dataclasses
from pathlib import Path

import numpy as np

from ..concepts.ontology import ConceptOntology, build_default_ontology
from ..data.streams import TrendShiftStream
from ..data.synthetic import FrameGenerator
from ..data.ucf_crime import SyntheticUCFCrime
from ..embedding.joint_space import JointEmbeddingModel, build_default_embedding_model
from ..gnn.pipeline import MissionGNNConfig, MissionGNNModel
from ..gnn.training import DecisionModelTrainer, TrainingConfig
from ..kg.generation import KGGenerationConfig, KGGenerator
from ..kg.graph import ReasoningKG
from ..kg.serialization import kg_from_dict, kg_to_dict
from ..llm.oracle import SyntheticLLM
from ..utils.rng import derive_rng
from .config import ReproConfig, config_to_dict
from .deployment import Deployment
from .registry import ModelRegistry

__all__ = ["Pipeline"]


class Pipeline:
    """Builds, trains, caches and deploys the full paper stack."""

    def __init__(self, config: ReproConfig | None = None,
                 registry: ModelRegistry | None = None):
        self.config = config or ReproConfig()
        if registry is None:
            registry = ModelRegistry(self.config.registry_dir)
        self.registry = registry
        self._ontology: ConceptOntology | None = None
        self._embedding_model: JointEmbeddingModel | None = None
        self._generator: FrameGenerator | None = None
        self._dataset: SyntheticUCFCrime | None = None
        self._kg_cache: dict[str, dict] = {}
        self.trained_count = 0  # registry misses that led to actual training

    @classmethod
    def from_config(cls, source: ReproConfig | dict | str | Path | None = None,
                    overrides: list[str] | None = None,
                    registry: ModelRegistry | None = None) -> "Pipeline":
        """Build a pipeline from a config object, dict, or JSON file path.

        ``overrides`` are ``key=value`` dotted-path assignments applied on
        top (the CLI's ``--set`` flags go through here).
        """
        if source is None:
            config = ReproConfig()
        elif isinstance(source, ReproConfig):
            config = source.copy()
        elif isinstance(source, dict):
            config = ReproConfig.from_dict(source)
        else:
            config = ReproConfig.load(source)
        config.apply_overrides(overrides)
        return cls(config, registry=registry)

    # ------------------------------------------------------------------
    # Lazily-built shared infrastructure
    # ------------------------------------------------------------------
    @property
    def ontology(self) -> ConceptOntology:
        if self._ontology is None:
            self._ontology = build_default_ontology()
        return self._ontology

    @property
    def embedding_model(self) -> JointEmbeddingModel:
        if self._embedding_model is None:
            self._embedding_model = build_default_embedding_model(
                seed=self.config.experiment.seed)
        return self._embedding_model

    @property
    def generator(self) -> FrameGenerator:
        if self._generator is None:
            self._generator = FrameGenerator(self.embedding_model,
                                             seed=self.config.experiment.seed)
        return self._generator

    @property
    def dataset(self) -> SyntheticUCFCrime:
        if self._dataset is None:
            exp = self.config.experiment
            self._dataset = SyntheticUCFCrime(
                self.generator, scale=exp.dataset_scale,
                frames_per_video=exp.frames_per_video, seed=exp.seed)
        return self._dataset

    # -- effective sub-configs (experiment section is authoritative) ----
    def model_config(self) -> MissionGNNConfig:
        exp = self.config.experiment
        return dataclasses.replace(self.config.model,
                                   temporal_window=exp.window, seed=exp.seed)

    def training_config(self) -> TrainingConfig:
        exp = self.config.experiment
        return dataclasses.replace(self.config.training,
                                   steps=exp.train_steps,
                                   batch_size=exp.train_batch,
                                   learning_rate=exp.train_lr, seed=exp.seed)

    def _fingerprint(self) -> str:
        """Registry fingerprint over everything that shapes a trained model."""
        return ModelRegistry.fingerprint({
            "experiment": config_to_dict(self.config.experiment),
            "model": config_to_dict(self.model_config()),
            "training": config_to_dict(self.training_config()),
        })

    # ------------------------------------------------------------------
    # Cloud side: KG generation and decision-model training
    # ------------------------------------------------------------------
    def generate_kg(self, mission: str) -> ReasoningKG:
        """Mission KG via the LLM oracle (cached structurally, fresh tokens)."""
        if mission not in self._kg_cache:
            exp = self.config.experiment
            oracle = SyntheticLLM(self.ontology, seed=exp.seed)
            generator = KGGenerator(oracle, KGGenerationConfig(depth=exp.kg_depth))
            kg, _ = generator.generate(mission)
            kg.initialize_tokens(self.embedding_model)
            self._kg_cache[mission] = kg_to_dict(kg)
        return kg_from_dict(copy.deepcopy(self._kg_cache[mission]))

    def train(self, mission: str) -> MissionGNNModel:
        """Cloud-side training for a mission, served from the registry.

        Every call returns a fresh model instance rebuilt from the stored
        deployment artifact, so callers may freeze or adapt their copy
        freely.
        """
        fingerprint = self._fingerprint()
        cached = self.registry.load(mission, fingerprint, self.embedding_model)
        if cached is not None:
            return cached
        kg = self.generate_kg(mission)
        model = MissionGNNModel([kg], self.embedding_model, self.model_config())
        windows, labels = self.train_windows(mission)
        DecisionModelTrainer(model, self.training_config()).train(windows, labels)
        model.eval()
        self.trained_count += 1
        self.registry.store(mission, fingerprint, model)
        # Serve from the registry even on the first call: the artifact
        # round-trip is what guarantees reload determinism.
        return self.registry.load(mission, fingerprint, self.embedding_model)

    # ------------------------------------------------------------------
    # Data access
    # ------------------------------------------------------------------
    def train_windows(self, mission: str) -> tuple[np.ndarray, np.ndarray]:
        exp = self.config.experiment
        return self.dataset.mission_windows(
            "train", mission, window=exp.window, stride=4,
            normal_videos=exp.train_normal_videos,
            anomaly_videos=exp.train_anomaly_videos)

    def normal_anchors(self, mission: str, count: int = 60) -> np.ndarray:
        windows, labels = self.train_windows(mission)
        return windows[labels == 0][:count]

    def eval_windows(self, anomaly_class: str,
                     seed_tag: str = "eval") -> tuple[np.ndarray, np.ndarray]:
        """Balanced held-out windows of one anomaly class vs normal."""
        exp = self.config.experiment
        rng = derive_rng(exp.seed, seed_tag, anomaly_class)
        windows, labels = [], []
        for _ in range(exp.eval_normal_windows):
            windows.append(np.stack([self.generator.normal_frame(rng)
                                     for _ in range(exp.window)]))
            labels.append(0)
        for _ in range(exp.eval_anomaly_windows):
            windows.append(np.stack([self.generator.anomaly_frame(anomaly_class, rng)
                                     for _ in range(exp.window)]))
            labels.append(1)
        return np.stack(windows), np.asarray(labels, dtype=np.int64)

    def stream(self, initial_class: str | None = None,
               shifted_class: str | None = None, **kwargs) -> TrendShiftStream:
        """A deployment stream shaped by the config's ``stream`` section.

        Keyword overrides with value ``None`` are ignored, so callers can
        pass optional CLI flags straight through.
        """
        kwargs = {k: v for k, v in kwargs.items() if v is not None}
        scfg = dataclasses.replace(self.config.stream,
                                   window=self.config.experiment.window, **kwargs)
        if initial_class is not None:
            scfg.initial_class = initial_class
        if shifted_class is not None:
            scfg.shifted_class = shifted_class
        return TrendShiftStream(self.generator, scfg)

    # ------------------------------------------------------------------
    # Edge side
    # ------------------------------------------------------------------
    def deploy(self, mission: str, adaptive: bool = True,
               with_anchors: bool = True) -> Deployment:
        """Train (or fetch) the mission model and wrap it as a deployment."""
        model = self.train(mission)
        anchors = self.normal_anchors(mission) if with_anchors else None
        return Deployment(model, mission=mission,
                          adaptation_config=copy.deepcopy(self.config.adaptation),
                          adaptive=adaptive, normal_anchor_windows=anchors)

    # ------------------------------------------------------------------
    # Backwards compatibility
    # ------------------------------------------------------------------
    @property
    def context(self):
        """An :class:`~repro.eval.ExperimentContext` view of this pipeline."""
        from ..eval.experiments import ExperimentContext
        return ExperimentContext.from_pipeline(self)
