"""The ``Deployment`` runtime: a long-lived edge serving object.

Wraps a trained :class:`~repro.gnn.MissionGNNModel` plus (optionally) the
continuous-adaptation controller behind a small serving surface:

* :meth:`ingest` — feed one arrival batch; the controller may adapt;
* :meth:`scores` — score windows without feeding the monitor;
* :meth:`serve` — drive a whole stream, yielding one event per batch;
* :meth:`save` / :meth:`load` — checkpoint the *entire* runtime (model,
  KGs, adaptation config, monitor state, window buffer, RNG states) so a
  deployment survives process restarts mid-adaptation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..adaptation.controller import (
    AdaptationConfig,
    AdaptationStepLog,
    ContinuousAdaptationController,
)
from ..embedding.joint_space import JointEmbeddingModel
from ..gnn.checkpoint import deployment_from_dict, deployment_to_dict
from ..gnn.pipeline import MissionGNNModel
from ..utils.serialization import atomic_write_json, decode_array, encode_array
from .config import config_from_dict, config_to_dict

__all__ = ["Deployment", "ServeEvent"]

_FORMAT_VERSION = 1


def _embedding_fingerprint(embedding_model: JointEmbeddingModel) -> str:
    """Digest of the frozen token vocabulary the deployment was built on.

    The joint embedding model is shipped separately from deployment
    checkpoints; this digest catches resuming against the wrong one
    (e.g. a different seed), which would otherwise silently produce
    garbage scores.
    """
    import hashlib
    vectors = np.ascontiguousarray(embedding_model.token_table.vectors,
                                   dtype=np.float64)
    return hashlib.sha256(vectors.tobytes()).hexdigest()[:16]


@dataclass
class ServeEvent:
    """One :meth:`Deployment.serve` step."""

    step: int
    scores: np.ndarray
    log: AdaptationStepLog | None = None
    active_class: str | None = None
    is_post_shift: bool | None = None


class Deployment:
    """Model + adaptation controller behind a serving interface."""

    def __init__(self, model: MissionGNNModel, mission: str | None = None,
                 adaptation_config: AdaptationConfig | None = None,
                 adaptive: bool = True,
                 normal_anchor_windows: np.ndarray | None = None):
        self.model = model
        self.mission = mission
        self.adaptive = adaptive
        self.adaptation_config = adaptation_config or AdaptationConfig()
        self.normal_anchor_windows = (
            None if normal_anchor_windows is None
            else np.asarray(normal_anchor_windows, dtype=np.float64))
        self.controller: ContinuousAdaptationController | None = None
        if adaptive:
            self.controller = ContinuousAdaptationController(
                model, self.adaptation_config,
                normal_anchor_windows=self.normal_anchor_windows)
        else:
            model.eval()
        self._static_steps = 0

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def scores(self, windows: np.ndarray) -> np.ndarray:
        """Anomaly probabilities without feeding the adaptation monitor."""
        return self.model.anomaly_scores(windows)

    def ingest(self, windows: np.ndarray,
               scores: np.ndarray | None = None) -> AdaptationStepLog:
        """Feed one arrival batch; adaptive deployments may adapt on it.

        ``scores`` may carry this model's precomputed anomaly scores for
        ``windows`` (the fleet micro-batcher scores many streams in one
        coalesced forward and dispatches the slices back here).
        """
        if self.controller is not None:
            return self.controller.process_batch(windows, scores=scores)
        windows = np.asarray(windows, dtype=np.float64)
        if windows.ndim != 3:
            raise ValueError(f"expected (B, T, frame_dim), got {windows.shape}")
        if scores is None:
            scores = self.model.anomaly_scores(windows)
        else:
            # Mirror the controller's validation: a mis-sliced micro-batch
            # result must raise here, not silently log garbage scores.
            scores = np.asarray(scores, dtype=np.float64)
            if scores.shape != (windows.shape[0],):
                raise ValueError(f"expected {windows.shape[0]} precomputed "
                                 f"scores, got shape {scores.shape}")
        log = AdaptationStepLog(step=self._static_steps, scores=scores)
        self._static_steps += 1
        return log

    def serve(self, stream, tracer=None):
        """Drive ``stream`` through :meth:`ingest`, yielding one event per batch.

        ``stream`` may yield :class:`~repro.data.StreamBatch` objects (the
        repo's deployment streams) or raw ``(B, T, frame_dim)`` arrays.

        Serving runs through the canonical
        :class:`~repro.runtime.ServingEngine` round loop as a
        single-stream fleet (``batched=False``: with one stream per round
        there is nothing to coalesce, and the deployment scores inside
        :meth:`ingest` exactly as before).  ``tracer`` (an optional
        :class:`repro.obs.TraceRecorder`) records one ``engine.round``
        span per served round.
        """
        # Imported here: repro.serving builds on repro.api, not the
        # other way around — this convenience wrapper is the one upward
        # edge, deferred so the layering holds at import time.
        # repro: allow[layer-dag] deliberate lazy back-edge, see above
        from ..serving.fleet import DeploymentFleet
        fleet = DeploymentFleet()
        fleet.add("deployment", self, stream)
        if tracer is not None:
            fleet.engine.tracer = tracer
        for events in fleet.serve(batched=False):
            for event in events:
                yield ServeEvent(step=event.step, scores=event.scores,
                                 log=event.log,
                                 active_class=event.active_class,
                                 is_post_shift=event.is_post_shift)

    def freeze(self) -> None:
        """Turn an adaptive deployment into a static one.

        The model keeps whatever adaptation it has absorbed so far; the
        controller is dropped, so further :meth:`ingest` calls only score.
        """
        if self.controller is not None:
            self._static_steps = self.controller.step_count
            self.controller = None
        self.adaptive = False
        self.model.eval()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def step_count(self) -> int:
        if self.controller is not None:
            return self.controller.step_count
        return self._static_steps

    @property
    def update_count(self) -> int:
        return 0 if self.controller is None else self.controller.update_count

    @property
    def total_pruned(self) -> int:
        return 0 if self.controller is None else self.controller.total_pruned

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def to_dict(self, include_model: bool = True) -> dict:
        """Serialize the runtime; ``include_model=False`` omits the model
        section (the fleet checkpoint stores shared models separately)."""
        payload = {
            "format_version": _FORMAT_VERSION,
            "mission": self.mission,
            "adaptive": self.adaptive,
            "embedding_fingerprint": _embedding_fingerprint(
                self.model.embedding_model),
            "model": deployment_to_dict(self.model) if include_model else None,
            "adaptation_config": config_to_dict(self.adaptation_config),
            "anchors": (None if self.normal_anchor_windows is None
                        else encode_array(self.normal_anchor_windows)),
            "runtime": (None if self.controller is None
                        else self.controller.export_state()),
            "static_steps": self._static_steps,
        }
        return payload

    def save(self, path: str | Path) -> None:
        """Write the whole runtime (model + adaptation state) to one file."""
        atomic_write_json(path, self.to_dict())

    @classmethod
    def from_dict(cls, payload: dict, embedding_model: JointEmbeddingModel,
                  model: MissionGNNModel | None = None) -> "Deployment":
        """Rebuild from :meth:`to_dict` output.

        ``model`` injects an already-restored model instance instead of
        rebuilding one from ``payload["model"]`` — the fleet checkpoint
        stores each shared scoring model once and passes it to every
        deployment that referenced it.
        """
        version = payload.get("format_version")
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported deployment format version: {version}")
        saved_fingerprint = payload.get("embedding_fingerprint")
        if (saved_fingerprint is not None
                and saved_fingerprint != _embedding_fingerprint(embedding_model)):
            raise ValueError(
                "embedding model mismatch: this deployment was built on a "
                "different joint embedding vocabulary (check the experiment "
                "seed used to construct the embedding model)")
        if model is None:
            if payload.get("model") is None:
                raise ValueError(
                    "payload has no model section (saved with "
                    "include_model=False); pass the restored model via "
                    "the `model` argument")
            model = deployment_from_dict(payload["model"], embedding_model)
        anchors = (None if payload.get("anchors") is None
                   else decode_array(payload["anchors"]))
        adaptation = config_from_dict(AdaptationConfig,
                                      payload["adaptation_config"])
        deployment = cls(model, mission=payload.get("mission"),
                         adaptation_config=adaptation,
                         adaptive=payload.get("adaptive", True),
                         normal_anchor_windows=anchors)
        if deployment.controller is not None and payload.get("runtime"):
            deployment.controller.restore_state(payload["runtime"])
        deployment._static_steps = payload.get("static_steps", 0)
        return deployment

    @classmethod
    def load(cls, path: str | Path,
             embedding_model: JointEmbeddingModel) -> "Deployment":
        """Rebuild a deployment saved by :meth:`save`.

        The frozen joint embedding model is shared infrastructure (shipped
        once, not per deployment), so it is passed in rather than stored.
        """
        return cls.from_dict(json.loads(Path(path).read_text()), embedding_model)
