"""Hierarchical configuration for the public deployment API.

:class:`ReproConfig` nests every knob of the stack — experiment data
shaping, model architecture, cloud-side training, edge-side adaptation
(monitor / token update / convergence), and the deployment stream — into
one object that round-trips to/from plain dicts and JSON and accepts
dotted-path overrides::

    cfg = ReproConfig()
    cfg.override("adaptation.monitor.window", 72)
    cfg.override("experiment.train_steps", "200")   # strings are coerced
    Pipeline.from_config(cfg)

The CLI exposes the same mechanism as ``--set key=value`` on every
subcommand.
"""

from __future__ import annotations

import dataclasses
import json
import types
import typing
from dataclasses import dataclass, field, is_dataclass
from pathlib import Path

from ..adaptation.controller import AdaptationConfig
from ..data.streams import TrendShiftConfig
from ..eval.experiments import ExperimentConfig
from ..gnn.pipeline import MissionGNNConfig
from ..gnn.training import TrainingConfig
from ..utils.serialization import atomic_write_text

__all__ = ["ReproConfig", "config_to_dict", "config_from_dict"]


# ----------------------------------------------------------------------
# Generic nested-dataclass <-> dict machinery
# ----------------------------------------------------------------------
def config_to_dict(obj) -> dict:
    """Recursively convert a (nested) config dataclass to plain dicts."""
    if is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: config_to_dict(getattr(obj, f.name))
                for f in dataclasses.fields(obj)}
    return obj


def _field_types(cls) -> dict[str, type]:
    hints = typing.get_type_hints(cls)
    return {f.name: hints[f.name] for f in dataclasses.fields(cls)}


def config_from_dict(cls, data: dict):
    """Build config dataclass ``cls`` from a plain dict (extra keys rejected)."""
    if not isinstance(data, dict):
        raise TypeError(f"expected dict for {cls.__name__}, got {type(data).__name__}")
    types = _field_types(cls)
    unknown = set(data) - set(types)
    if unknown:
        raise KeyError(f"unknown {cls.__name__} keys: {sorted(unknown)}")
    kwargs = {}
    for name, value in data.items():
        hint = types[name]
        if is_dataclass(hint):
            kwargs[name] = config_from_dict(hint, value)
        else:
            kwargs[name] = value
    return cls(**kwargs)


_TRUE = {"1", "true", "yes", "on"}
_FALSE = {"0", "false", "no", "off"}


def _coerce(value, hint, current):
    """Coerce ``value`` (often a CLI string) to the target field's type."""
    target = hint
    origin = typing.get_origin(hint)
    if origin is typing.Union or origin is types.UnionType:  # ``str | None``
        args = [a for a in typing.get_args(hint) if a is not type(None)]
        if value is None or (isinstance(value, str) and value.lower() == "none"):
            return None
        target = args[0] if args else str
    if target is bool or isinstance(current, bool):
        if isinstance(value, bool):
            return value
        text = str(value).strip().lower()
        if text in _TRUE:
            return True
        if text in _FALSE:
            return False
        raise ValueError(f"cannot interpret {value!r} as bool")
    if target is int:
        return int(value)
    if target is float:
        return float(value)
    if target is str:
        return str(value)
    return value


# ----------------------------------------------------------------------
# The top-level config
# ----------------------------------------------------------------------
@dataclass
class ReproConfig:
    """Every knob of the stack, hierarchically.

    Sections
    --------
    ``experiment``
        Data shaping and the canonical seed / window / training budget
        (:class:`~repro.eval.ExperimentConfig`).  ``seed``, ``window``,
        ``train_steps``, ``train_batch`` and ``train_lr`` here are
        authoritative: the pipeline projects them into the model and
        training sections, exactly as :class:`ExperimentContext` always
        did.
    ``model``
        Architecture knobs (:class:`~repro.gnn.MissionGNNConfig`).
    ``training``
        Cloud-side trainer knobs (:class:`~repro.gnn.TrainingConfig`).
    ``adaptation``
        The edge loop (:class:`~repro.adaptation.AdaptationConfig`), which
        itself nests ``monitor`` / ``update`` / ``convergence``.
    ``stream``
        Default deployment stream shape
        (:class:`~repro.data.TrendShiftConfig`).
    ``registry_dir``
        When set, trained models persist to this directory and survive
        process restarts (see :class:`~repro.api.ModelRegistry`).
    """

    experiment: ExperimentConfig = field(default_factory=ExperimentConfig)
    model: MissionGNNConfig = field(default_factory=MissionGNNConfig)
    training: TrainingConfig = field(default_factory=TrainingConfig)
    adaptation: AdaptationConfig = field(default_factory=AdaptationConfig)
    stream: TrendShiftConfig = field(default_factory=TrendShiftConfig)
    registry_dir: str | None = None

    # -- dict / JSON round-trip ----------------------------------------
    def to_dict(self) -> dict:
        return config_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ReproConfig":
        return config_from_dict(cls, data)

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ReproConfig":
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> None:
        atomic_write_text(path, self.to_json())

    @classmethod
    def load(cls, path: str | Path) -> "ReproConfig":
        return cls.from_json(Path(path).read_text())

    # -- dotted-path overrides -----------------------------------------
    def override(self, path: str, value) -> "ReproConfig":
        """Set a leaf by dotted path, e.g. ``adaptation.monitor.window``.

        String values are coerced to the target field's declared type, so
        the same call path serves programmatic use and ``--set`` flags on
        the CLI.  Returns ``self`` for chaining.
        """
        parts = path.split(".")
        if not all(parts):
            raise ValueError(f"malformed config path {path!r}")
        target = self
        for i, part in enumerate(parts[:-1]):
            if not is_dataclass(target) or not hasattr(target, part):
                raise KeyError(f"no config section {'.'.join(parts[:i + 1])!r}")
            target = getattr(target, part)
        leaf = parts[-1]
        if not is_dataclass(target) or leaf not in _field_types(type(target)):
            raise KeyError(f"no config field {path!r}")
        hint = _field_types(type(target))[leaf]
        if is_dataclass(hint):
            raise KeyError(f"{path!r} is a section, not a field; "
                           f"set one of its leaves instead")
        try:
            coerced = _coerce(value, hint, getattr(target, leaf))
        except (TypeError, ValueError) as exc:
            raise ValueError(f"bad value for {path!r}: {exc}") from exc
        setattr(target, leaf, coerced)
        return self

    def apply_overrides(self, assignments: list[str] | None) -> "ReproConfig":
        """Apply ``key=value`` strings (the CLI's ``--set`` arguments)."""
        for assignment in assignments or []:
            key, sep, value = assignment.partition("=")
            if not sep or not key:
                raise ValueError(
                    f"override {assignment!r} is not of the form key=value")
            self.override(key.strip(), value.strip())
        return self

    def copy(self) -> "ReproConfig":
        """Deep copy via the dict round-trip (sections stay independent)."""
        return ReproConfig.from_dict(self.to_dict())
