"""Public deployment API: the stable entry point to the whole stack.

This package is the supported way to build, train, deploy and persist the
paper's system:

>>> from repro.api import Pipeline, ReproConfig
>>> cfg = ReproConfig().override("experiment.train_steps", 100)
>>> pipe = Pipeline.from_config(cfg)
>>> deployment = pipe.deploy("Stealing", adaptive=True)
>>> for event in deployment.serve(pipe.stream("Stealing", "Robbery")):
...     pass
>>> deployment.save("deployment.json")  # doctest: +SKIP

Pieces
------
:class:`ReproConfig`
    Hierarchical config over every subsystem; dict/JSON round-trip and
    dotted-path overrides (``cfg.override("adaptation.monitor.window", 72)``).
:class:`Pipeline`
    Facade that lazily builds ontology -> embedding -> LLM -> KG -> GNN
    and trains per-mission decision models through the registry.
:class:`Deployment`
    Long-lived edge runtime (ingest / scores / serve / save / load).
:class:`ModelRegistry`
    Persistent store of trained models keyed by mission + config
    fingerprint.
"""

from .config import ReproConfig, config_from_dict, config_to_dict
from .deployment import Deployment, ServeEvent
from .pipeline import Pipeline
from .registry import ModelRegistry

__all__ = [
    "Pipeline",
    "Deployment",
    "ServeEvent",
    "ReproConfig",
    "ModelRegistry",
    "config_to_dict",
    "config_from_dict",
]
