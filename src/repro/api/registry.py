"""Persistent registry of trained deployment models.

The cloud side of the paper trains one decision model per mission; the
registry is where those artifacts live.  It replaces the old
``ExperimentContext._model_cache`` side dict with a first-class object:

* keyed by mission + a fingerprint of every config knob that affects
  training, so changing the config never serves a stale model;
* in-memory by default, with optional on-disk persistence (``root=...``)
  so a restarted process — or a separate serving process — reuses the
  cloud training instead of repeating it;
* artifacts are the standard deployment checkpoint format
  (:func:`repro.gnn.deployment_to_dict`), so every entry is also a valid
  edge deployment file.
"""

from __future__ import annotations

import copy
import hashlib
import json
import re
from pathlib import Path

from ..embedding.joint_space import JointEmbeddingModel
from ..gnn.checkpoint import deployment_from_dict, deployment_to_dict
from ..gnn.pipeline import MissionGNNModel
from ..utils.serialization import atomic_write_json

__all__ = ["ModelRegistry"]


def _slug(text: str) -> str:
    return re.sub(r"[^A-Za-z0-9_-]+", "_", text) or "model"


# Registry artifacts are ``<mission slug>-<16 hex digits>.json``; file
# operations match only this shape so a registry pointed at a shared
# directory never counts — or deletes — unrelated JSON files.
_KEY_RE = re.compile(r".+-[0-9a-f]{16}\Z")


class ModelRegistry:
    """Stores trained models by ``(mission, config fingerprint)``.

    Loads always rebuild a *fresh* model instance from the stored
    artifact, so callers can freeze/adapt their copy without corrupting
    the registry.
    """

    def __init__(self, root: str | Path | None = None):
        self.root = Path(root) if root is not None else None
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
        self._entries: dict[str, dict] = {}
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    @staticmethod
    def fingerprint(config_dict: dict) -> str:
        """Deterministic digest of a (nested) config dict."""
        canonical = json.dumps(config_dict, sort_keys=True, default=str)
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]

    def key(self, mission: str, fingerprint: str) -> str:
        return f"{_slug(mission)}-{fingerprint}"

    def _path(self, key: str) -> Path:
        assert self.root is not None
        return self.root / f"{key}.json"

    # ------------------------------------------------------------------
    def contains(self, mission: str, fingerprint: str) -> bool:
        key = self.key(mission, fingerprint)
        if key in self._entries:
            return True
        return self.root is not None and self._path(key).exists()

    def load(self, mission: str, fingerprint: str,
             embedding_model: JointEmbeddingModel) -> MissionGNNModel | None:
        """Rebuild the stored model, or ``None`` on a registry miss."""
        key = self.key(mission, fingerprint)
        payload = self._entries.get(key)
        if payload is None and self.root is not None and self._path(key).exists():
            payload = json.loads(self._path(key).read_text())
            self._entries[key] = payload
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return deployment_from_dict(copy.deepcopy(payload), embedding_model)

    def store(self, mission: str, fingerprint: str,
              model: MissionGNNModel) -> str:
        """Checkpoint ``model`` under the mission/config key; returns the key."""
        key = self.key(mission, fingerprint)
        payload = deployment_to_dict(model)
        self._entries[key] = payload
        if self.root is not None:
            atomic_write_json(self._path(key), payload)
        return key

    # ------------------------------------------------------------------
    def keys(self) -> list[str]:
        known = set(self._entries)
        if self.root is not None:
            known.update(p.stem for p in self.root.glob("*.json")
                         if _KEY_RE.match(p.stem))
        return sorted(known)

    def clear(self) -> None:
        self._entries.clear()
        if self.root is not None:
            for path in self.root.glob("*.json"):
                if _KEY_RE.match(path.stem):
                    path.unlink()

    def __len__(self) -> int:
        return len(self.keys())
