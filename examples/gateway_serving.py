"""Network gateway demo: server + client + load generator in one script.

The serving stack so far runs in-process (``DeploymentFleet``) or across
worker processes (``ShardedFleet``), but always driven by the caller's
own loop.  This example puts a fleet behind the
:class:`repro.gateway.GatewayServer` network front door and talks to it
like a remote camera uplink would:

1. serve a 4-stream fleet over TCP (ephemeral port, in-thread loop);
2. drive it with the blocking :class:`~repro.gateway.GatewayClient` —
   attach, ingest windows, read bit-identical scores back, poke the
   typed error paths (unknown stream, backpressure-bounded queues);
3. run the multi-connection :class:`~repro.gateway.LoadGenerator` and
   verify every response matches a direct in-process ``fleet.step()``
   run, then print the gateway's own ``stats`` metrics;
4. repeat the run with a :class:`~repro.obs.TraceRecorder` attached to
   both ends, so every request becomes a client → gateway → stage span
   tree — then summarize the per-stage percentiles and render the
   slowest request's tree, exactly what ``repro trace`` does for
   ``--trace-dir`` exports.

Run:  python examples/gateway_serving.py
"""

import numpy as np

from repro.api import Pipeline, ReproConfig
from repro.gateway import (GatewayClient, GatewayError, LoadGenConfig,
                           LoadGenerator, serve_in_thread)
from repro.obs import (TraceRecorder, check_trace, render_tree,
                       slowest_traces, stage_summary)
from repro.serving import build_fleet

STREAMS = 4
ROUNDS = 4
MISSIONS = ["Stealing", "Robbery"]


def build(pipeline):
    return build_fleet(pipeline, MISSIONS, STREAMS, windows_per_step=2)


def main() -> None:
    config = ReproConfig()
    config.override("experiment.train_steps", 150)  # demo-sized training
    pipeline = Pipeline.from_config(config)

    print(f"[1/4] Direct in-process reference run ({STREAMS} streams) ...")
    reference_fleet = build(pipeline)
    windows = {slot.name: [np.asarray(slot.stream.batch(r).windows)
                           for r in range(ROUNDS)]
               for slot in reference_fleet.slots}
    reference = {name: [] for name in reference_fleet.names}
    for _ in range(ROUNDS):
        for event in reference_fleet.step():
            reference[event.stream].append(event.scores)

    print("\n[2/4] Serving the same fleet over TCP ...")
    with build(pipeline) as fleet, serve_in_thread(fleet) as handle:
        host, port = handle.address
        print(f"      gateway listening on {host}:{port}")
        with GatewayClient(host, port) as client:
            name = fleet.names[0]
            client.attach(name)
            print(f"      negotiated wire codec: {client.negotiated_codec} "
                  f"(protocol v{client.protocol_version}; windows/scores "
                  "ride as raw float64 buffers)")
            reply = client.ingest(name, windows[name][0])
            identical = np.array_equal(reply["scores_array"],
                                       reference[name][0])
            print(f"      ingest -> step {reply['step']}, "
                  f"scores identical to direct run: {identical}")
            try:
                client.attach("no-such-camera")
            except GatewayError as error:
                print(f"      typed error frames: [{error.code}] "
                      f"{error.message[:48]}...")
        print("      (admission control rejects with a 'backpressure' "
              "frame once a stream's queue fills)")

    print("\n[3/4] Load-generating against a fresh gateway ...")
    with build(pipeline) as fleet, serve_in_thread(fleet) as handle:
        generator = LoadGenerator(handle.address, windows,
                                  LoadGenConfig(clients=2, rounds=ROUNDS))
        result = generator.run()
        with GatewayClient(*handle.address) as client:
            stats = client.stats()
    parity = all(np.array_equal(scores, reference[name][round_index])
                 for name, served in result.scores.items()
                 for round_index, scores in served)
    summary = result.summary()
    latency = summary["latency"]
    print(f"      {result.requests} requests over 2 connections: "
          f"{summary['windows_per_sec']:.1f} windows/s")
    print(f"      latency p50 {latency['p50_ms']:.2f} ms   "
          f"p95 {latency['p95_ms']:.2f} ms   p99 {latency['p99_ms']:.2f} ms")
    print(f"      every response bit-identical to fleet.step(): {parity}")
    counters = stats["metrics"]["counters"]
    print(f"      server metrics: {counters['gateway.requests.ingest']} "
          f"ingests over {counters['gateway.rounds']} coalesced rounds, "
          f"{counters['gateway.connections']} connections")

    print("\n[4/4] Same run, traced end to end ...")
    recorder = TraceRecorder()
    with build(pipeline) as fleet, \
            serve_in_thread(fleet, tracer=recorder) as handle:
        with GatewayClient(*handle.address, tracer=recorder) as client:
            for name in fleet.names:
                client.attach(name)
            for round_index in range(ROUNDS):
                for name in fleet.names:
                    client.ingest(name, windows[name][round_index])
    spans = recorder.snapshot()
    problems = check_trace(spans)
    print(f"      {len(spans)} spans recorded, stage chains "
          f"{'complete' if not problems else 'BROKEN: ' + problems[0]}")
    print("      per-stage p95 (ms):")
    for name, row in stage_summary(spans).items():
        print(f"        {name:<20} {row['p95_ms']:8.3f}  (n={row['count']})")
    trace_id, duration, group = slowest_traces(spans, 1)[0]
    print(f"      slowest request trace {trace_id} "
          f"({duration * 1e3:.3f} ms):")
    for line in render_tree(group).splitlines():
        print(f"        {line}")


if __name__ == "__main__":
    main()
