"""Network gateway demo: server + client + load generator in one script.

The serving stack so far runs in-process (``DeploymentFleet``) or across
worker processes (``ShardedFleet``), but always driven by the caller's
own loop.  This example puts a fleet behind the
:class:`repro.gateway.GatewayServer` network front door and talks to it
like a remote camera uplink would:

1. serve a 4-stream fleet over TCP (ephemeral port, in-thread loop);
2. drive it with the blocking :class:`~repro.gateway.GatewayClient` —
   attach, ingest windows, read bit-identical scores back, poke the
   typed error paths (unknown stream, backpressure-bounded queues);
3. run the multi-connection :class:`~repro.gateway.LoadGenerator` and
   verify every response matches a direct in-process ``fleet.step()``
   run, then print the gateway's own ``stats`` metrics.

Run:  python examples/gateway_serving.py
"""

import numpy as np

from repro.api import Pipeline, ReproConfig
from repro.gateway import (GatewayClient, GatewayError, LoadGenConfig,
                           LoadGenerator, serve_in_thread)
from repro.serving import build_fleet

STREAMS = 4
ROUNDS = 4
MISSIONS = ["Stealing", "Robbery"]


def build(pipeline):
    return build_fleet(pipeline, MISSIONS, STREAMS, windows_per_step=2)


def main() -> None:
    config = ReproConfig()
    config.override("experiment.train_steps", 150)  # demo-sized training
    pipeline = Pipeline.from_config(config)

    print(f"[1/3] Direct in-process reference run ({STREAMS} streams) ...")
    reference_fleet = build(pipeline)
    windows = {slot.name: [np.asarray(slot.stream.batch(r).windows)
                           for r in range(ROUNDS)]
               for slot in reference_fleet.slots}
    reference = {name: [] for name in reference_fleet.names}
    for _ in range(ROUNDS):
        for event in reference_fleet.step():
            reference[event.stream].append(event.scores)

    print("\n[2/3] Serving the same fleet over TCP ...")
    with build(pipeline) as fleet, serve_in_thread(fleet) as handle:
        host, port = handle.address
        print(f"      gateway listening on {host}:{port}")
        with GatewayClient(host, port) as client:
            name = fleet.names[0]
            client.attach(name)
            print(f"      negotiated wire codec: {client.negotiated_codec} "
                  f"(protocol v{client.protocol_version}; windows/scores "
                  "ride as raw float64 buffers)")
            reply = client.ingest(name, windows[name][0])
            identical = np.array_equal(reply["scores_array"],
                                       reference[name][0])
            print(f"      ingest -> step {reply['step']}, "
                  f"scores identical to direct run: {identical}")
            try:
                client.attach("no-such-camera")
            except GatewayError as error:
                print(f"      typed error frames: [{error.code}] "
                      f"{error.message[:48]}...")
        print("      (admission control rejects with a 'backpressure' "
              "frame once a stream's queue fills)")

    print("\n[3/3] Load-generating against a fresh gateway ...")
    with build(pipeline) as fleet, serve_in_thread(fleet) as handle:
        generator = LoadGenerator(handle.address, windows,
                                  LoadGenConfig(clients=2, rounds=ROUNDS))
        result = generator.run()
        with GatewayClient(*handle.address) as client:
            stats = client.stats()
    parity = all(np.array_equal(scores, reference[name][round_index])
                 for name, served in result.scores.items()
                 for round_index, scores in served)
    summary = result.summary()
    latency = summary["latency"]
    print(f"      {result.requests} requests over 2 connections: "
          f"{summary['windows_per_sec']:.1f} windows/s")
    print(f"      latency p50 {latency['p50_ms']:.2f} ms   "
          f"p95 {latency['p95_ms']:.2f} ms   p99 {latency['p99_ms']:.2f} ms")
    print(f"      every response bit-identical to fleet.step(): {parity}")
    counters = stats["metrics"]["counters"]
    print(f"      server metrics: {counters['gateway.requests.ingest']} "
          f"ingests over {counters['gateway.rounds']} coalesced rounds, "
          f"{counters['gateway.connections']} connections")


if __name__ == "__main__":
    main()
