"""Durable serving demo: serve -> SIGKILL -> recover -> verify.

The gateway with ``wal_dir`` set appends every accepted ingest to a
write-ahead log *before* it becomes schedulable and group-commit fsyncs
before any response leaves the server — so an acked score is always on
disk.  Since PR 10 the fsync no longer blocks the round loop: a
dedicated committer thread fsyncs round N's batch while the engine is
already computing round N+1, and acks are released only once the
covering fsync lands (ack-after-fsync preserved, just overlapped).
This script proves the property the hard way:

1. run an uninterrupted reference fleet in this process;
2. launch a child process serving a bit-identical fleet over TCP with a
   WAL directory, and ingest a few rounds through the network client
   (printing the pipelining overlap stats the gateway reports);
3. ``SIGKILL`` the child mid-flight — no drain, no close, no snapshot;
4. ``recover_fleet`` from the WAL directory alone and verify the
   recovered fleet continues bit-identically with the reference.

Exits non-zero on any mismatch, so CI runs it as the crash-recovery
smoke job.

Run:  python examples/durable_serving.py [--rounds N] [--quick]
"""

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.api import Deployment
from repro.concepts import build_default_ontology
from repro.data import FrameGenerator, TrendShiftConfig, TrendShiftStream
from repro.embedding import build_default_embedding_model
from repro.gnn import MissionGNNConfig, MissionGNNModel
from repro.kg import KGGenerationConfig, KGGenerator
from repro.llm import SyntheticLLM
from repro.serving import DeploymentFleet
from repro.wal import WalConfig, recover_fleet

STREAMS = 3
WINDOW = 4


def build_fleet() -> DeploymentFleet:
    """A deterministic demo fleet: same seeds -> bit-identical replicas
    in the parent, the served child, and (via the WAL) recovery."""
    ontology = build_default_ontology()
    embedding = build_default_embedding_model(seed=7)
    generator = FrameGenerator(embedding, seed=5)
    oracle = SyntheticLLM(ontology, seed=3)
    kg, _ = KGGenerator(oracle, KGGenerationConfig(depth=3)).generate(
        "Stealing")
    kg.initialize_tokens(embedding)
    model = MissionGNNModel([kg], embedding,
                            MissionGNNConfig(temporal_window=WINDOW, seed=7))
    model.eval()
    fleet = DeploymentFleet()
    for index in range(STREAMS):
        fleet.add(
            f"cam-{index}",
            Deployment(model, mission="Stealing", adaptive=False),
            TrendShiftStream(generator, TrendShiftConfig(
                steps_before_shift=2, steps_after_shift=2,
                windows_per_step=2, window=WINDOW, seed=60 + index)))
    return fleet


def serve_forever(wal_dir: str, port_file: str) -> None:
    """Child mode: serve the fleet durably until the parent kills us."""
    from repro.gateway import serve_in_thread
    fleet = build_fleet()
    handle = serve_in_thread(fleet, wal_dir=wal_dir,
                             wal_config=WalConfig(fsync_batch=4))
    host, port = handle.address
    Path(port_file).write_text(f"{host} {port}\n")
    signal.pause()   # SIGKILL is the only way out — that is the demo


def report_overlap(stats: dict) -> None:
    """Print how much fsync time the async group commit overlapped with
    compute: the committer's batch count, the round loop's residual
    commit wait, and the fsyncs the acks actually waited on."""
    engine = stats.get("engine") or {}
    metrics = stats.get("metrics") or {}
    pipeline = engine.get("pipeline") or {}
    if not pipeline.get("enabled"):
        print("      (serial rounds: commit ran inline, nothing overlapped)")
        return
    fsyncs = (metrics.get("counters") or {}).get("wal.fsyncs", 0)
    fsync_ms = ((metrics.get("histograms") or {})
                .get("wal.fsync_latency") or {}).get("p50_ms", 0.0)
    wait = ((metrics.get("histograms") or {})
            .get("engine.stage.commit_wait") or {})
    print(f"      overlap: {pipeline.get('commit_batches', 0)} commit "
          f"batch(es) fsynced off the round loop ({fsyncs} fsync(s), "
          f"p50 {fsync_ms:.2f} ms each), backlog "
          f"{pipeline.get('commit_backlog', 0)}; the round loop only "
          f"waited for commits {wait.get('count', 0)} time(s)"
          + (f" (p50 {wait.get('p50_ms', 0.0):.2f} ms)"
             if wait.get("count") else ""))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=3,
                        help="rounds to serve before the kill (default 3)")
    parser.add_argument("--quick", action="store_true",
                        help="2 rounds, for CI smoke")
    parser.add_argument("--serve", nargs=2, metavar=("WAL_DIR", "PORT_FILE"),
                        help=argparse.SUPPRESS)   # internal child mode
    args = parser.parse_args()
    if args.serve:
        serve_forever(*args.serve)
        return
    rounds = 2 if args.quick else args.rounds

    print(f"[1/4] Uninterrupted reference run ({STREAMS} streams, "
          f"{rounds + 1} rounds) ...")
    reference_fleet = build_fleet()
    windows = {slot.name: [np.asarray(slot.stream.batch(r).windows,
                                      dtype=np.float64)
                           for r in range(rounds + 1)]
               for slot in reference_fleet.slots}
    reference = {name: [] for name in reference_fleet.names}
    for r in range(rounds + 1):
        events = reference_fleet.ingest_round(
            {name: windows[name][r] for name in reference_fleet.names})
        for name, event in events.items():
            reference[name].append(event.scores)

    workdir = Path(tempfile.mkdtemp(prefix="durable_serving_"))
    wal_dir = workdir / "wal"
    port_file = workdir / "port"
    print(f"[2/4] Launching a durable gateway child (wal: {wal_dir}) ...")
    child = subprocess.Popen(
        [sys.executable, __file__, "--serve", str(wal_dir), str(port_file)])
    try:
        deadline = time.time() + 120
        while not port_file.exists():
            if child.poll() is not None:
                raise SystemExit("child gateway exited before serving")
            if time.time() > deadline:
                raise SystemExit("child gateway never published its port")
            time.sleep(0.2)
        host, port = port_file.read_text().split()

        from repro.gateway import GatewayClient
        print(f"      ingesting {rounds} rounds via {host}:{port} ...")
        with GatewayClient(host, int(port)) as client:
            for name in windows:
                client.attach(name)
            for r in range(rounds):
                for name in windows:
                    reply = client.ingest(name, windows[name][r])
                    assert np.array_equal(reply["scores_array"],
                                          reference[name][r]), \
                        f"live {name} round {r} diverged from reference"
            report_overlap(client.stats())

        print(f"[3/4] SIGKILL the gateway (pid {child.pid}) — no drain, "
              "no snapshot ...")
        os.kill(child.pid, signal.SIGKILL)
        child.wait()
    finally:
        if child.poll() is None:
            child.kill()
            child.wait()

    print(f"[4/4] Recovering the fleet from {wal_dir} alone ...")
    recovered, report = recover_fleet(wal_dir)
    print(f"      {report.summary()}")
    assert sorted(recovered.names) == sorted(windows), \
        "recovered fleet lost streams"
    events = recovered.ingest_round(
        {name: windows[name][rounds] for name in recovered.names})
    for name, event in events.items():
        assert np.array_equal(event.scores, reference[name][rounds]), \
            f"post-recovery {name} diverged — durability is broken"
    print("\nEvery acked score survived the kill; the recovered fleet "
          "continues bit-identically. Durable serving works.")


if __name__ == "__main__":
    main()
