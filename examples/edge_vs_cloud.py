"""Edge-vs-cloud maintenance comparison (the paper's Table I scenario).

Simulates one month in which the anomaly trend alternates between Stealing
and Robbery four times.  The baseline regenerates its KG in the cloud at
every change; the proposed method adapts on the edge.  Prints the full
Table I with measured AUC rows and FLOPs counted from the actual model.

Run:  python examples/edge_vs_cloud.py
"""

from repro.api import Pipeline, ReproConfig
from repro.edge import EfficiencyComparison
from repro.eval import EfficiencyExperiment


def main() -> None:
    print("[1/2] Simulating one month of alternating anomaly trends ...")
    pipeline = Pipeline.from_config(ReproConfig())
    experiment = EfficiencyExperiment(
        pipeline.context, class_a="Stealing", class_b="Robbery",
        alternations=4, steps_per_phase=10)
    measured = experiment.run()
    print(f"      baseline per-phase AUC: "
          f"{[round(a, 3) for a in measured.phase_aucs_baseline]}")
    print(f"      proposed per-phase AUC: "
          f"{[round(a, 3) for a in measured.phase_aucs_proposed]}")

    print("[2/2] Building Table I ...\n")
    comparison = EfficiencyComparison(
        model=pipeline.train("Stealing"),
        auc_baseline=measured.auc_baseline,
        auc_proposed=measured.auc_proposed)
    print(comparison.format_table())
    print(f"\nKG memory footprint (measured): {comparison.kg_memory_gb():.6f} GB")
    print(f"Edge adaptation energy (measured): "
          f"{comparison.edge_energy_per_update_joules:.2f} J/update")


if __name__ == "__main__":
    main()
