"""Runtime policy demo: swapping scheduling policies on a live gateway.

Every serving layer runs on one ``repro.runtime.ServingEngine``; the
gateway exposes its pluggable :class:`~repro.runtime.SchedulingPolicy`
seam.  This example serves the *same* fleet under all three policies and
shows the load-bearing invariant — scores are **bit-identical** under
every policy; only round composition changes:

1. record a direct in-process ``fleet.step()`` reference;
2. serve gateways under ``fair`` (≤1 request/stream/round round-robin),
   ``greedy`` (drain the whole backlog into one round), and
   ``priority`` (priority/deadline admission) scheduling, driving each
   with the identical per-stream window sequence;
3. compare scores and the engine's promoted metrics (rounds, windows
   per coalesced forward) across policies, then show a priority request
   with an already-missed ``deadline_ms`` being shed with a typed
   ``expired`` frame instead of served stale.

Run:  python examples/runtime_policies.py
"""

import time

import numpy as np

from repro.api import Pipeline, ReproConfig
from repro.gateway import GatewayClient, GatewayError, serve_in_thread
from repro.serving import build_fleet

STREAMS = 3
ROUNDS = 3
POLICIES = ("fair", "greedy", "priority")


def build(pipeline):
    return build_fleet(pipeline, ["Stealing"], STREAMS, windows_per_step=2)


def main() -> None:
    config = ReproConfig()
    config.override("experiment.train_steps", 150)  # demo-sized training
    pipeline = Pipeline.from_config(config)

    print(f"[1/3] Direct in-process reference run ({STREAMS} streams) ...")
    reference_fleet = build(pipeline)
    windows = {slot.name: [np.asarray(slot.stream.batch(r).windows)
                           for r in range(ROUNDS)]
               for slot in reference_fleet.slots}
    reference = {name: [] for name in reference_fleet.names}
    for _ in range(ROUNDS):
        for event in reference_fleet.step():
            reference[event.stream].append(event.scores)

    print("\n[2/3] The same windows under each scheduling policy ...")
    for policy in POLICIES:
        with build(pipeline) as fleet, \
                serve_in_thread(fleet, policy=policy) as handle:
            identical = True
            with GatewayClient(*handle.address) as client:
                for name in windows:
                    client.attach(name)
                for round_index in range(ROUNDS):
                    for position, name in enumerate(windows):
                        # Priorities only matter to the priority policy;
                        # the others ignore them — scores never change.
                        reply = client.request(
                            "ingest", stream=name,
                            windows=windows[name][round_index].tolist(),
                            priority=position)
                        scores = np.asarray(reply["scores"])
                        identical &= np.array_equal(
                            scores, reference[name][round_index])
                stats = client.stats()
            engine = stats["engine"]
            coalesce = engine["coalesce"]
            print(f"      {policy:<8s}: scores identical {identical}   "
                  f"engine rounds {engine['rounds']:2d}   "
                  f"{coalesce['windows_per_forward']:.2f} windows/forward")

    print("\n[3/3] Deadline admission under the priority policy ...")
    with build(pipeline) as fleet, \
            serve_in_thread(fleet, policy="priority") as handle:
        handle.pause_rounds()      # hold the round loop so the deadline
        name = fleet.names[0]      # lapses while the request is queued
        with GatewayClient(*handle.address) as client:
            client.attach(name)
            import threading
            outcome = {}

            def doomed_ingest():
                try:
                    client.request("ingest", stream=name,
                                   windows=windows[name][0].tolist(),
                                   deadline_ms=30)
                except GatewayError as error:
                    outcome["error"] = error

            worker = threading.Thread(target=doomed_ingest)
            worker.start()
            time.sleep(0.2)        # 30 ms deadline long gone
            handle.resume_rounds()
            worker.join(timeout=30)
        error = outcome.get("error")
        print(f"      stale request shed with a typed frame: "
              f"[{error.code}] {error.message[:56]}...")
        print("      (a fresh request for the same stream would still "
              "serve step 0 — expired work never touches the monitor)")


if __name__ == "__main__":
    main()
