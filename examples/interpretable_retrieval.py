"""Interpretable KG retrieval demo (the paper's Fig. 6 scenario).

Adapts a Stealing-mission KG through a shift to Robbery, then decodes the
learned token embeddings back to human-readable words.  Tracks the paper's
example node ("sneaky") and reports its movement toward the new anomaly's
concepts ("firearm"), plus the full retrieved KG.

Run:  python examples/interpretable_retrieval.py
"""

from repro.adaptation import InterpretableKGRetrieval
from repro.api import Pipeline, ReproConfig
from repro.data import TrendShiftConfig
from repro.eval import RetrievalDriftExperiment, format_retrieval_drift


def main() -> None:
    print("[1/3] Training the Stealing-mission model ...")
    pipeline = Pipeline.from_config(ReproConfig())

    print("[2/3] Running Stealing -> Robbery adaptation with drift tracking ...")
    experiment = RetrievalDriftExperiment(
        pipeline.context, initial_class="Stealing", shifted_class="Robbery",
        tracked_word="sneaky", target_word="firearm",
        stream_config=TrendShiftConfig(
            initial_class="Stealing", shifted_class="Robbery",
            steps_before_shift=6, steps_after_shift=24, windows_per_step=24,
            anomaly_fraction=0.3, window=8, seed=11))
    result = experiment.run()
    print()
    print(format_retrieval_drift(result))

    print("\n[3/3] Full interpretable retrieval of the adapted KG "
          "(Euclidean metric, the paper's choice):")
    model = pipeline.train("Stealing")  # fresh registry copy for comparison
    retrieval = InterpretableKGRetrieval(pipeline.embedding_model.token_table,
                                         metric="euclidean", top_k=2)
    for node_result in retrieval.retrieve_kg(model.kgs[0]):
        words = ", ".join(node_result.top_words(per_token=1))
        print(f"  L{node_result.level} {node_result.original_text!r:28s} -> {words}")


if __name__ == "__main__":
    main()
