"""Sharded fleet serving demo: one fleet, many worker processes.

Micro-batching (see ``examples/fleet_serving.py``) removes per-call fixed
costs, but the whole fleet still shares one Python process and one GEMM
queue.  This example partitions the same fleet across worker processes
with :class:`repro.serving.ShardedFleet` and demonstrates:

1. round-robin shard assignment and bit-identical scores vs the
   single-process batched fleet (sharding is a throughput decision,
   never an accuracy one);
2. attaching/detaching streams mid-run across shards;
3. one whole-fleet checkpoint file shared with ``DeploymentFleet``
   (save sharded, resume sharded or single-process).

Spawn-safety caveat: worker processes rebuild models and streams from
the fleet checkpoint format, so anything attached must be a
checkpointable ``TrendShiftStream``, and this script needs the
``if __name__ == "__main__"`` guard you see below.

Run:  python examples/sharded_fleet.py
"""

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.api import Pipeline, ReproConfig
from repro.serving import ShardedFleet, build_fleet, build_sharded_fleet

STREAMS = 8
SHARDS = 2
MISSIONS = ["Stealing", "Robbery"]


def main() -> None:
    config = ReproConfig()
    config.override("experiment.train_steps", 150)  # demo-sized training
    pipeline = Pipeline.from_config(config)

    print(f"[1/4] Building a {STREAMS}-stream fleet sharded across "
          f"{SHARDS} worker processes ...")
    single = build_fleet(pipeline, MISSIONS, STREAMS, windows_per_step=2)
    fleet = build_sharded_fleet(pipeline, MISSIONS, STREAMS, shards=SHARDS,
                                windows_per_step=2)
    by_shard = {}
    for name, shard in fleet.assignment.items():
        by_shard.setdefault(shard, []).append(name)
    for shard, names in sorted(by_shard.items()):
        print(f"      shard {shard}: {', '.join(names)}")

    print("\n[2/4] Sharded vs single-process batched on identical "
          "arrivals ...")
    start = time.perf_counter()
    single_rounds = [single.step() for _ in range(6)]
    single_s = time.perf_counter() - start
    start = time.perf_counter()
    sharded_rounds = [fleet.step() for _ in range(6)]
    sharded_s = time.perf_counter() - start
    diffs = [float(np.abs(a.scores - b.scores).max())
             for round_a, round_b in zip(single_rounds, sharded_rounds)
             for a, b in zip(round_a, round_b)]
    windows = sum(e.scores.size for r in sharded_rounds for e in r)
    print(f"      single-process: {windows / single_s:8.1f} windows/s")
    print(f"      {SHARDS}-shard:        {windows / sharded_s:8.1f} "
          f"windows/s ({single_s / sharded_s:.2f}x; scales with physical "
          "cores, so expect <1x on 1-2 core machines)")
    print(f"      max |sharded - single| score diff: {max(diffs)}")

    print("\n[3/4] Attaching/detaching streams mid-run ...")
    fleet.add("latecomer", single.remove(single.names[0]),
              pipeline.stream("Stealing", None, windows_per_step=2,
                              seed=999))
    events = fleet.step()
    print(f"      round now serves {len(events)} streams "
          f"(latecomer landed on shard "
          f"{fleet.assignment['latecomer']})")
    fleet.remove("latecomer")
    print(f"      after detach: {len(fleet)} streams")

    print("\n[4/4] One checkpoint file, shared with DeploymentFleet ...")
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "fleet.json"
        fleet.save(path)
        size_kb = path.stat().st_size / 1024
        resumed = ShardedFleet.load(path)  # same shard layout
        a = fleet.step()
        b = resumed.step()
        identical = all(np.array_equal(x.scores, y.scores)
                        for x, y in zip(a, b))
        print(f"      {size_kb:.0f} KiB for {len(resumed)} streams "
              f"across {resumed.shards} shards")
        print(f"      resumed fleet's next round identical: {identical}")
        resumed.close()
    fleet.close()


if __name__ == "__main__":
    main()
