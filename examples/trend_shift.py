"""Trend-shift adaptation demo (the paper's Fig. 5 scenario).

Deploys a Stealing-mission model on a simulated edge device through the
:mod:`repro.api` facade, then shifts the anomaly trend to Robbery (weak
shift).  Two deployments watch the same stream: one with continuous KG
adaptive learning, one static.  Prints the per-step test AUC of both so
you can watch the drop-and-recover dynamics live.

Run:  python examples/trend_shift.py [strong]
      (pass "strong" to use the Stealing -> Explosion strong-shift scenario)
"""

import sys

from repro.api import Pipeline, ReproConfig
from repro.eval import ascii_series, roc_auc


def main() -> None:
    strong = len(sys.argv) > 1 and sys.argv[1] == "strong"
    shifted_class = "Explosion" if strong else "Robbery"

    print("[1/3] Training the Stealing-mission model (cloud side) ...")
    pipeline = Pipeline.from_config(ReproConfig())
    adaptive = pipeline.deploy("Stealing", adaptive=True)
    static = pipeline.deploy("Stealing", adaptive=False)  # registry hit: no retrain

    print(f"[2/3] Deploying and streaming a Stealing -> {shifted_class} "
          f"({'strong' if strong else 'weak'}) trend shift ...")
    stream = pipeline.stream(
        "Stealing", shifted_class, steps_before_shift=6, steps_after_shift=20,
        seed=11)
    eval_sets = {
        cls: pipeline.eval_windows(cls)
        for cls in ("Stealing", shifted_class)
    }

    adaptive_trace, static_trace = [], []
    for batch in stream:
        log = adaptive.ingest(batch.windows)
        windows, labels = eval_sets[batch.active_class]
        auc_a = roc_auc(adaptive.scores(windows), labels)
        auc_s = roc_auc(static.scores(windows), labels)
        adaptive_trace.append(auc_a)
        static_trace.append(auc_s)
        marker = " <-- SHIFT" if batch.step == stream.config.steps_before_shift else ""
        updated = f"k={log.k:<3d}" if log.updated else "     "
        print(f"  step {batch.step:2d} [{batch.active_class:9s}] {updated} "
              f"adaptive={auc_a:.3f}  static={auc_s:.3f}{marker}")

    print("\n[3/3] Summary")
    print(f"  token updates: {adaptive.update_count}, "
          f"nodes pruned: {adaptive.total_pruned}")
    print("\n  adaptive AUC trace:")
    for line in ascii_series(adaptive_trace, width=36):
        print("   ", line)
    print("\n  static AUC trace:")
    for line in ascii_series(static_trace, width=36):
        print("   ", line)
    gap = adaptive_trace[-1] - static_trace[-1]
    print(f"\n  final adaptive-vs-static gap: {gap:+.3f}")


if __name__ == "__main__":
    main()
