"""Trend-shift adaptation demo (the paper's Fig. 5 scenario).

Deploys a Stealing-mission model on a simulated edge device, then shifts
the anomaly trend to Robbery (weak shift).  Two copies of the model watch
the same stream: one with continuous KG adaptive learning, one static.
Prints the per-step test AUC of both so you can watch the drop-and-recover
dynamics live.

Run:  python examples/trend_shift.py [strong]
      (pass "strong" to use the Stealing -> Explosion strong-shift scenario)
"""

import sys

from repro.adaptation import ContinuousAdaptationController
from repro.data import TrendShiftConfig, TrendShiftStream
from repro.eval import (
    ExperimentConfig,
    ExperimentContext,
    ascii_series,
    roc_auc,
)


def main() -> None:
    strong = len(sys.argv) > 1 and sys.argv[1] == "strong"
    shifted_class = "Explosion" if strong else "Robbery"

    print("[1/3] Training the Stealing-mission model (cloud side) ...")
    context = ExperimentContext(ExperimentConfig())
    adaptive = context.train_model("Stealing")
    static = context.train_model("Stealing")

    print(f"[2/3] Deploying and streaming a Stealing -> {shifted_class} "
          f"({'strong' if strong else 'weak'}) trend shift ...")
    controller = ContinuousAdaptationController(
        adaptive, normal_anchor_windows=context.normal_anchors("Stealing"))
    stream_config = TrendShiftConfig(
        initial_class="Stealing", shifted_class=shifted_class,
        steps_before_shift=6, steps_after_shift=20, windows_per_step=24,
        anomaly_fraction=0.3, window=8, seed=11)
    eval_sets = {
        cls: context.eval_windows(cls)
        for cls in ("Stealing", shifted_class)
    }

    adaptive_trace, static_trace = [], []
    for batch in TrendShiftStream(context.generator, stream_config):
        log = controller.process_batch(batch.windows)
        windows, labels = eval_sets[batch.active_class]
        auc_a = roc_auc(adaptive.anomaly_scores(windows), labels)
        auc_s = roc_auc(static.anomaly_scores(windows), labels)
        adaptive_trace.append(auc_a)
        static_trace.append(auc_s)
        marker = " <-- SHIFT" if batch.step == stream_config.steps_before_shift else ""
        updated = f"k={log.k:<3d}" if log.updated else "     "
        print(f"  step {batch.step:2d} [{batch.active_class:9s}] {updated} "
              f"adaptive={auc_a:.3f}  static={auc_s:.3f}{marker}")

    print("\n[3/3] Summary")
    print(f"  token updates: {controller.update_count}, "
          f"nodes pruned: {controller.total_pruned}")
    print("\n  adaptive AUC trace:")
    for line in ascii_series(adaptive_trace, width=36):
        print("   ", line)
    print("\n  static AUC trace:")
    for line in ascii_series(static_trace, width=36):
        print("   ", line)
    gap = adaptive_trace[-1] - static_trace[-1]
    print(f"\n  final adaptive-vs-static gap: {gap:+.3f}")


if __name__ == "__main__":
    main()
