"""Multi-mission deployment demo: several anomaly types, one edge device.

The paper's decision model supports n anomaly types — one reasoning KG per
type, concatenated reasoning embeddings, an (n+1)-way decision head with
per-type posteriors p_{i|A}.  This example trains a three-mission model
(Stealing, Explosion, Arrest — one per semantic cluster), evaluates
detection per class and type classification among anomalies, then
checkpoints the whole runtime through :class:`repro.api.Deployment` and
reloads it.

Run:  python examples/multi_mission.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.api import Deployment, Pipeline, ReproConfig
from repro.eval.multimission import MultiMissionExperiment


def main() -> None:
    missions = ["Stealing", "Explosion", "Arrest"]
    print(f"[1/3] Training one model over {len(missions)} mission KGs ...")
    pipeline = Pipeline.from_config(ReproConfig())
    experiment = MultiMissionExperiment(pipeline.context, missions)
    result = experiment.run()
    print()
    print(result.summary())
    print("\nconfusion matrix (rows = true type, cols = predicted):")
    header = "        " + "  ".join(f"{m[:8]:>8}" for m in missions)
    print(header)
    for mission, row in zip(missions, result.type_confusion):
        print(f"{mission[:8]:>8}" + "  ".join(f"{v:>8d}" for v in row))

    print("\n[2/3] Checkpointing the deployment to one artifact ...")
    model = experiment.build_model()  # rebuild; run() trains its own copy
    deployment = Deployment(model, mission="+".join(missions), adaptive=False)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "multi_mission_deployment.json"
        deployment.save(path)
        size_kb = path.stat().st_size / 1024
        print(f"      wrote {path.name} ({size_kb:.0f} KiB: weights, "
              f"norm stats, {len(missions)} KGs)")

        print("[3/3] Reloading on the 'edge' and verifying bit-identical scores ...")
        loaded = Deployment.load(path, pipeline.embedding_model)
        windows, _ = pipeline.eval_windows("Stealing")
        original = deployment.scores(windows[:8])
        restored = loaded.scores(windows[:8])
        assert np.allclose(original, restored, atol=1e-12)
        print("      scores match exactly.")


if __name__ == "__main__":
    main()
