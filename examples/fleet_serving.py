"""Fleet serving demo: many concurrent streams, one batched scoring loop.

The paper deploys one edge camera per model; this example serves a whole
fleet.  It builds 8 trend-shift streams over 2 missions, serves them
through :class:`repro.serving.DeploymentFleet` — whose micro-batcher
coalesces every round's arrival windows into one GNN forward per scoring
model — then demonstrates the three fleet-specific capabilities:

1. batched vs sequential throughput on identical arrivals (with the
   bit-identical-scores guarantee that makes batching a free win);
2. attaching and detaching streams mid-run;
3. checkpointing the entire fleet (deployments, stream positions, shared
   models stored once) and resuming it.

Run:  python examples/fleet_serving.py
"""

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.api import Pipeline, ReproConfig
from repro.serving import DeploymentFleet, build_fleet

STREAMS = 8
MISSIONS = ["Stealing", "Robbery"]


def main() -> None:
    config = ReproConfig()
    config.override("experiment.train_steps", 150)  # demo-sized training
    pipeline = Pipeline.from_config(config)

    print(f"[1/4] Building a {STREAMS}-stream fleet over {MISSIONS} ...")
    fleet = build_fleet(pipeline, MISSIONS, STREAMS, windows_per_step=2)
    print(f"      {len(fleet)} streams attached: {', '.join(fleet.names)}")

    print("\n[2/4] Batched vs sequential serving on identical arrivals ...")
    sequential_fleet = build_fleet(pipeline, MISSIONS, STREAMS,
                                   windows_per_step=2)
    start = time.perf_counter()
    sequential_events = [sequential_fleet.step(batched=False)
                         for _ in range(6)]
    sequential_s = time.perf_counter() - start
    start = time.perf_counter()
    batched_events = [fleet.step(batched=True) for _ in range(6)]
    batched_s = time.perf_counter() - start
    diffs = [float(np.abs(b.scores - s.scores).max())
             for b_round, s_round in zip(batched_events, sequential_events)
             for b, s in zip(b_round, s_round)]
    windows = sum(e.scores.size for r in batched_events for e in r)
    print(f"      sequential: {windows / sequential_s:8.1f} windows/s")
    print(f"      batched:    {windows / batched_s:8.1f} windows/s "
          f"({sequential_s / batched_s:.2f}x, "
          f"{fleet.batcher.batches_run} coalesced forwards)")
    print(f"      max |batched - sequential| score diff: {max(diffs)}")

    print("\n[3/4] Attaching/detaching streams mid-run ...")
    fleet.add("latecomer",
              sequential_fleet.remove(sequential_fleet.names[0]),
              pipeline.stream("Stealing", None, windows_per_step=2, seed=999))
    events = fleet.step()
    print(f"      round now serves {len(events)} streams "
          f"(latecomer joined at its step 0)")
    fleet.remove("latecomer")
    print(f"      after detach: {len(fleet)} streams")

    print("\n[4/4] Checkpointing the whole fleet ...")
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "fleet.json"
        fleet.save(path)
        size_kb = path.stat().st_size / 1024
        restored = DeploymentFleet.load(path, pipeline.embedding_model,
                                        pipeline.generator)
        a = fleet.step()
        b = restored.step()
        identical = all(np.array_equal(x.scores, y.scores)
                        for x, y in zip(a, b))
        print(f"      {size_kb:.0f} KiB for {len(restored)} streams "
              f"(shared models deduplicated)")
        print(f"      resumed fleet's next round identical: {identical}")


if __name__ == "__main__":
    main()
