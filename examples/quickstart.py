"""Quickstart: generate a mission KG, train the decision model, detect.

This walks the first two stages of the paper's pipeline (Fig. 2 A+B):

1. mission-specific reasoning-KG generation via the LLM oracle;
2. training the lightweight hierarchical-GNN decision model;
3. scoring held-out surveillance windows and reporting AUC.

Run:  python examples/quickstart.py
"""

from repro.concepts import build_default_ontology
from repro.data import FrameGenerator, SyntheticUCFCrime
from repro.embedding import build_default_embedding_model
from repro.eval import roc_auc
from repro.gnn import (
    DecisionModelTrainer,
    MissionGNNConfig,
    MissionGNNModel,
    TrainingConfig,
)
from repro.kg import KGGenerationConfig, KGGenerator
from repro.llm import SyntheticLLM

MISSION = "Stealing"
SEED = 7


def main() -> None:
    # ------------------------------------------------------------------
    # Stage A: mission-specific KG generation (Fig. 3).
    # ------------------------------------------------------------------
    print(f"[1/4] Generating the mission KG for {MISSION!r} ...")
    ontology = build_default_ontology()
    oracle = SyntheticLLM(ontology, seed=SEED)
    generator = KGGenerator(oracle, KGGenerationConfig(depth=3))
    kg, report = generator.generate(MISSION)
    print(f"      {kg.num_nodes} nodes / {kg.num_edges} edges; "
          f"{len(report.errors_detected)} LLM errors detected, "
          f"{report.corrections_applied} corrected, "
          f"{report.nodes_pruned} pruned")
    print("      " + kg.summary().replace("\n", "\n      "))

    # ------------------------------------------------------------------
    # The frozen joint embedding model (ImageBind substitute) binds the
    # KG's concept texts and the camera frames into one space.
    # ------------------------------------------------------------------
    print("[2/4] Building the joint embedding model and tokenizing the KG ...")
    embedding_model = build_default_embedding_model(seed=SEED)
    kg.initialize_tokens(embedding_model)

    # ------------------------------------------------------------------
    # Stage B: train the GNN-based decision model (Fig. 2B).
    # ------------------------------------------------------------------
    print("[3/4] Training the decision model on synthetic UCF-Crime ...")
    frames = FrameGenerator(embedding_model, seed=SEED)
    dataset = SyntheticUCFCrime(frames, scale=0.15, frames_per_video=40,
                                seed=SEED)
    windows, labels = dataset.mission_windows(
        "train", MISSION, window=8, stride=4,
        normal_videos=20, anomaly_videos=8)
    model = MissionGNNModel([kg], embedding_model,
                            MissionGNNConfig(temporal_window=8, seed=SEED))
    result = DecisionModelTrainer(model, TrainingConfig(
        steps=300, batch_size=32, learning_rate=3e-3)).train(windows, labels)
    print(f"      {result.steps} steps; loss {result.losses[0]:.3f} -> "
          f"{result.final_loss:.3f}")

    # ------------------------------------------------------------------
    # Inference: frame-level anomaly scores on the test split.
    # ------------------------------------------------------------------
    print("[4/4] Scoring the test split ...")
    test_windows, test_labels = dataset.mission_windows(
        "test", MISSION, window=8, stride=4,
        normal_videos=15, anomaly_videos=6)
    scores = model.anomaly_scores(test_windows)
    auc = roc_auc(scores, test_labels)
    print(f"      test windows: {test_windows.shape[0]}, "
          f"anomalous fraction: {test_labels.mean():.2f}")
    print(f"      frame-level test AUC: {auc:.3f}")


if __name__ == "__main__":
    main()
