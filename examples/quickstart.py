"""Quickstart: generate a mission KG, train the decision model, detect.

This walks the first two stages of the paper's pipeline (Fig. 2 A+B)
through the public :mod:`repro.api` facade:

1. mission-specific reasoning-KG generation via the LLM oracle;
2. training the lightweight hierarchical-GNN decision model (served from
   the pipeline's model registry);
3. scoring held-out surveillance windows and reporting AUC.

Run:  python examples/quickstart.py
"""

from repro.api import Pipeline, ReproConfig
from repro.eval import roc_auc

MISSION = "Stealing"


def main() -> None:
    config = ReproConfig()
    config.override("experiment.seed", 7)
    config.override("experiment.train_steps", 300)
    config.override("experiment.train_lr", 3e-3)
    pipeline = Pipeline.from_config(config)

    # ------------------------------------------------------------------
    # Stage A: mission-specific KG generation (Fig. 3).
    # ------------------------------------------------------------------
    print(f"[1/3] Generating the mission KG for {MISSION!r} ...")
    kg = pipeline.generate_kg(MISSION)
    print(f"      {kg.num_nodes} nodes / {kg.num_edges} edges")
    print("      " + kg.summary().replace("\n", "\n      "))

    # ------------------------------------------------------------------
    # Stage B: train the GNN-based decision model (Fig. 2B).  The frozen
    # joint embedding model (ImageBind substitute) and the synthetic
    # UCF-Crime dataset are built lazily by the pipeline.
    # ------------------------------------------------------------------
    print("[2/3] Training the decision model on synthetic UCF-Crime ...")
    model = pipeline.train(MISSION)
    print(f"      registry entries: {', '.join(pipeline.registry.keys())}")

    # ------------------------------------------------------------------
    # Inference: frame-level anomaly scores on the test split.
    # ------------------------------------------------------------------
    print("[3/3] Scoring the test split ...")
    test_windows, test_labels = pipeline.dataset.mission_windows(
        "test", MISSION, window=pipeline.config.experiment.window, stride=4,
        normal_videos=15, anomaly_videos=6)
    scores = model.anomaly_scores(test_windows)
    auc = roc_auc(scores, test_labels)
    print(f"      test windows: {test_windows.shape[0]}, "
          f"anomalous fraction: {test_labels.mean():.2f}")
    print(f"      frame-level test AUC: {auc:.3f}")


if __name__ == "__main__":
    main()
