"""Legacy-path shim; all metadata lives in pyproject.toml.

Kept so environments without the ``wheel`` package (where PEP 660
editable builds fail) can still do
``pip install -e . --no-build-isolation --no-use-pep517``.
"""

from setuptools import setup

setup()
