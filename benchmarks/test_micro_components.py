"""Micro-benchmarks of the reproduction's own substrate.

These time the hot paths a deployment would care about: per-window
inference, one adaptation phase, KG generation, tokenizer throughput, and
interpretable retrieval.  pytest-benchmark reports the timings; the asserts
only sanity-check outputs so a regression in correctness fails loudly.
"""

import numpy as np
import pytest

from repro.adaptation import InterpretableKGRetrieval, TokenEmbeddingUpdater
from repro.concepts import build_default_ontology
from repro.eval import roc_auc
from repro.kg import KGGenerationConfig, KGGenerator
from repro.llm import SyntheticLLM


@pytest.mark.benchmark(group="micro")
def test_bench_inference_per_batch(benchmark, context):
    model = context.train_model("Stealing")
    windows, _ = context.eval_windows("Stealing")
    batch = windows[:16]
    scores = benchmark(model.anomaly_scores, batch)
    assert scores.shape == (16,)


@pytest.mark.benchmark(group="micro")
def test_bench_adaptation_step(benchmark, context):
    model = context.train_model("Stealing")
    model.freeze_for_deployment()
    updater = TokenEmbeddingUpdater(model)
    windows, labels = context.eval_windows("Stealing")
    batch, pseudo = windows[:20], labels[:20]

    result = benchmark(updater.update, batch, pseudo)
    assert np.isfinite(result.loss)


@pytest.mark.benchmark(group="micro")
def test_bench_kg_generation(benchmark):
    ontology = build_default_ontology()

    def generate():
        oracle = SyntheticLLM(ontology, seed=3)
        kg, _ = KGGenerator(oracle, KGGenerationConfig(depth=3)).generate("Stealing")
        return kg

    kg = benchmark(generate)
    assert kg.num_nodes > 5


@pytest.mark.benchmark(group="micro")
def test_bench_tokenizer_encode(benchmark, context):
    tokenizer = context.embedding_model.tokenizer
    text = ("surveillance captured a masked person pointing weapon at the "
            "register while a crowd of shoppers fled the scene") * 4
    ids = benchmark(tokenizer.encode, text)
    assert len(ids) > 20


@pytest.mark.benchmark(group="micro")
def test_bench_interpretable_retrieval(benchmark, context):
    model = context.train_model("Stealing")
    retrieval = InterpretableKGRetrieval(context.embedding_model.token_table)
    results = benchmark(retrieval.retrieve_kg, model.kgs[0])
    assert results


@pytest.mark.benchmark(group="micro")
def test_bench_roc_auc(benchmark):
    rng = np.random.default_rng(0)
    scores = rng.random(5000)
    labels = rng.integers(0, 2, 5000)
    value = benchmark(roc_auc, scores, labels)
    assert 0.4 < value < 0.6
