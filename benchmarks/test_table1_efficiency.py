"""Table I — detailed computational and performance comparison between the
cloud-based-KG-updates baseline and the proposed edge-based KG adaptation.

Measurement scenario (paper Section IV-D): the anomaly trend alternates
between Stealing and Robbery four times per month.  The baseline generates
a new KG (GPT-4, cloud) at every change; the proposed method adapts its KG
token embeddings on the edge device.

Cloud-side constants follow the paper (1e15 FLOPs and 200 GB per GPT-4 KG
generation); edge-side FLOPs/energy are *counted from our actual model
shapes*; the AUC rows are measured from the simulation.

Expected shape (paper): zero monthly cloud cost for the proposed method,
~1e9-FLOPs-scale daily edge cost, and a proposed-method AUC within a few
points of the baseline (paper: 0.91 vs 0.93).
"""

import pytest

from repro.edge import EfficiencyComparison
from repro.eval import EfficiencyExperiment

from .conftest import emit


@pytest.mark.benchmark(group="table1")
def test_table1_cloud_vs_edge(benchmark, context):
    def run():
        experiment = EfficiencyExperiment(
            context, class_a="Stealing", class_b="Robbery",
            alternations=4, steps_per_phase=10)
        measured = experiment.run()
        comparison = EfficiencyComparison(
            model=context.train_model("Stealing"),
            auc_baseline=measured.auc_baseline,
            auc_proposed=measured.auc_proposed)
        return measured, comparison

    measured, comparison = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Table I — baseline (cloud KG updates) vs proposed (edge adaptation)",
         comparison.format_table()
         + f"\n\nper-phase AUC baseline: "
           f"{[round(a, 3) for a in measured.phase_aucs_baseline]}"
         + f"\nper-phase AUC proposed: "
           f"{[round(a, 3) for a in measured.phase_aucs_proposed]}"
         + f"\nedge token updates over the month: {measured.edge_updates_proposed}")

    # Shape assertions against the paper's table:
    rows = {r.metric: r for r in comparison.rows()}
    # 1. The proposed method has zero recurring cloud costs.
    assert rows["Total GPT-4 Computational Cost (FLOPs/month)"].proposed == "0"
    assert rows["Network Bandwidth Usage for KG Updates (GB/month)"].proposed == "Zero"
    # 2. Edge adaptation cost is orders of magnitude below one KG generation.
    assert comparison.edge_flops_per_month < 1e12 < 4e15
    # 3. Detection quality: proposed lands within 0.15 AUC of the baseline
    #    (paper: 0.91 vs 0.93 — a small gap, not a collapse).
    assert measured.auc_proposed > measured.auc_baseline - 0.15
    assert measured.auc_baseline > 0.75
