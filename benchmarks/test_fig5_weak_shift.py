"""Fig. 5(A) — weak anomaly shift: Stealing <-> Robbery.

Regenerates both weak-shift panels of the paper's Figure 5: test AUC across
continuous-learning steps, with vs without KG adaptive learning, for
Stealing -> Robbery and Robbery -> Stealing.

Expected shape (paper): a noticeable AUC drop at the shift, quick recovery
with adaptation, and convergence to a higher level than the static KG.
"""

import pytest

from repro.data import TrendShiftConfig
from repro.eval import TrendShiftExperiment, format_trend_shift

from .conftest import emit

STREAM = dict(steps_before_shift=6, steps_after_shift=20, windows_per_step=24,
              anomaly_fraction=0.3, window=8, seed=11)


def run_panel(context, initial, shifted):
    experiment = TrendShiftExperiment(context, TrendShiftConfig(
        initial_class=initial, shifted_class=shifted, **STREAM))
    return experiment.run()


@pytest.mark.benchmark(group="fig5-weak")
def test_fig5a_stealing_to_robbery(benchmark, context):
    result = benchmark.pedantic(
        lambda: run_panel(context, "Stealing", "Robbery"),
        rounds=1, iterations=1)
    emit("Fig. 5(A) panel 1 — Stealing -> Robbery (weak shift)",
         format_trend_shift(result))
    assert result.shift_strength == "weak"
    # Shape assertions: static KG loses accuracy after the shift...
    means = result.category_means()
    pre = [a for s, a in zip(result.steps, result.auc_static)
           if s < result.shift_step]
    assert means["static"][-1] < sum(pre) / len(pre)
    # ...and adaptation ends at or above the static baseline.
    assert means["adaptive"][-1] >= means["static"][-1] - 0.02


@pytest.mark.benchmark(group="fig5-weak")
def test_fig5a_robbery_to_stealing(benchmark, context):
    result = benchmark.pedantic(
        lambda: run_panel(context, "Robbery", "Stealing"),
        rounds=1, iterations=1)
    emit("Fig. 5(A) panel 2 — Robbery -> Stealing (weak shift)",
         format_trend_shift(result))
    assert result.shift_strength == "weak"
    means = result.category_means()
    assert means["adaptive"][-1] >= means["static"][-1] - 0.02
