"""Paper-artifact benchmarks as a package.

The ``__init__`` makes ``benchmarks`` importable as a proper package so
the bench modules' relative imports (``from .conftest import emit``)
resolve no matter where pytest is invoked from.
"""
