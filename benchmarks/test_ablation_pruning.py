"""Ablation — structural adaptation (node pruning + creation).

The paper's Fig. 4 pipeline prunes diverging nodes and creates random
replacements.  This bench runs the strong-shift scenario (where divergence
pressure is highest) with structural adaptation enabled vs disabled and
reports final AUC and structural churn.

Expected: enabling pruning never *hurts* materially, and the mechanism's
churn stays bounded (the rate limiter works).
"""

import pytest

from repro.adaptation import (
    AdaptationConfig,
    ContinuousAdaptationController,
    ConvergenceConfig,
    MonitorConfig,
)
from repro.data import TrendShiftConfig, TrendShiftStream
from repro.eval import roc_auc

from .conftest import emit

STREAM = TrendShiftConfig(
    initial_class="Stealing", shifted_class="Explosion",
    steps_before_shift=6, steps_after_shift=20, windows_per_step=24,
    anomaly_fraction=0.3, window=8, seed=11)


def run_variant(context, structural: bool, eager: bool = False):
    model = context.train_model(STREAM.initial_class)
    eval_w, eval_l = context.eval_windows(STREAM.shifted_class)
    convergence = (ConvergenceConfig(patience=2, min_updates=3, min_distance=0.01)
                   if eager else ConvergenceConfig())
    controller = ContinuousAdaptationController(
        model,
        AdaptationConfig(monitor=MonitorConfig(window=72, lag=36),
                         convergence=convergence,
                         structural_adaptation=structural),
        normal_anchor_windows=context.normal_anchors(STREAM.initial_class))
    for batch in TrendShiftStream(context.generator, STREAM):
        controller.process_batch(batch.windows)
    auc = roc_auc(model.anomaly_scores(eval_w), eval_l)
    return auc, controller.total_pruned, controller.update_count


@pytest.mark.benchmark(group="ablation-pruning")
def test_ablation_structural_adaptation(benchmark, context):
    def run_all():
        return {
            "tokens only": run_variant(context, structural=False),
            "tokens + prune/create": run_variant(context, structural=True),
            "eager pruning": run_variant(context, structural=True, eager=True),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    body = "\n".join(
        f"{name:>22}: AUC={auc:.3f}  pruned={pruned}  updates={updates}"
        for name, (auc, pruned, updates) in results.items())
    emit("Ablation — structural adaptation (Stealing -> Explosion)", body)
    base_auc = results["tokens only"][0]
    full_auc = results["tokens + prune/create"][0]
    assert full_auc >= base_auc - 0.1  # pruning must not wreck adaptation
    assert results["eager pruning"][1] >= results["tokens + prune/create"][1]
