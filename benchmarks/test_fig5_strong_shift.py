"""Fig. 5(B) — strong anomaly shift: Stealing -> Explosion.

Expected shape (paper): a larger AUC drop than the weak shift and a
*slower* improvement after the shift, "reflecting the greater challenge in
adapting to more significant shifts in anomaly type".
"""

import pytest

from repro.data import TrendShiftConfig
from repro.eval import TrendShiftExperiment, format_trend_shift

from .conftest import emit


@pytest.mark.benchmark(group="fig5-strong")
def test_fig5b_stealing_to_explosion(benchmark, context):
    experiment = TrendShiftExperiment(context, TrendShiftConfig(
        initial_class="Stealing", shifted_class="Explosion",
        steps_before_shift=6, steps_after_shift=20, windows_per_step=24,
        anomaly_fraction=0.3, window=8, seed=11))
    result = benchmark.pedantic(experiment.run, rounds=1, iterations=1)
    emit("Fig. 5(B) — Stealing -> Explosion (strong shift)",
         format_trend_shift(result))
    assert result.shift_strength == "strong"
    means = result.category_means()
    # Adaptation must end above the static baseline...
    assert means["adaptive"][-1] >= means["static"][-1]
    # ...but the strong-shift baseline sits lower than the weak-shift one:
    # transfer across clusters is much worse (paper: bigger drop).
    pre = [a for s, a in zip(result.steps, result.auc_static)
           if s < result.shift_step]
    assert means["static"][-1] < sum(pre) / len(pre) - 0.15


@pytest.mark.benchmark(group="fig5-strong")
def test_fig5_weak_recovers_higher_than_strong(benchmark, context):
    """Cross-panel property: weak-shift adaptation converges to a higher
    AUC than strong-shift adaptation (paper's central Fig. 5 contrast)."""
    def run_both():
        weak = TrendShiftExperiment(context, TrendShiftConfig(
            initial_class="Stealing", shifted_class="Robbery",
            steps_before_shift=6, steps_after_shift=20, windows_per_step=24,
            anomaly_fraction=0.3, window=8, seed=11)).run()
        strong = TrendShiftExperiment(context, TrendShiftConfig(
            initial_class="Stealing", shifted_class="Explosion",
            steps_before_shift=6, steps_after_shift=20, windows_per_step=24,
            anomaly_fraction=0.3, window=8, seed=11)).run()
        return weak, strong

    weak, strong = benchmark.pedantic(run_both, rounds=1, iterations=1)
    weak_final = weak.category_means()["adaptive"][-1]
    strong_final = strong.category_means()["adaptive"][-1]
    emit("Fig. 5 cross-panel contrast",
         f"weak-shift final adaptive AUC:   {weak_final:.3f}\n"
         f"strong-shift final adaptive AUC: {strong_final:.3f}")
    assert weak_final > strong_final
