"""Fig. 6 — qualitative evaluation of knowledge updates via interpretable
KG retrieval.

Tracks a Stealing-KG node (the paper's example: "sneaky") through a
Stealing -> Robbery adaptation run and reports its token-space position
between the initial concept and the new anomaly's concept ("firearm"),
plus the decoded nearest words at snapshots.

Expected shape (paper): the node's embedding gradually moves away from the
initial concept words toward concept words of the new anomaly.
"""

import pytest

from repro.data import TrendShiftConfig
from repro.eval import RetrievalDriftExperiment, format_retrieval_drift

from .conftest import emit


@pytest.mark.benchmark(group="fig6")
def test_fig6_sneaky_drifts_toward_firearm(benchmark, context):
    experiment = RetrievalDriftExperiment(
        context, initial_class="Stealing", shifted_class="Robbery",
        tracked_word="sneaky", target_word="firearm",
        stream_config=TrendShiftConfig(
            initial_class="Stealing", shifted_class="Robbery",
            steps_before_shift=6, steps_after_shift=30, windows_per_step=24,
            anomaly_fraction=0.3, window=8, seed=11))
    result = benchmark.pedantic(experiment.run, rounds=1, iterations=1)
    emit("Fig. 6 — interpretable KG retrieval drift", format_retrieval_drift(result))
    positions = result.trajectory.relative_position()
    # The node must move toward the new anomaly's concept...
    assert result.net_drift > 0.02
    # ...and the movement must be broadly monotone (drift, not noise):
    # the final position exceeds the trajectory's first-quarter mean.
    quarter = max(len(positions) // 4, 1)
    assert positions[-1] > positions[:quarter].mean()


@pytest.mark.benchmark(group="fig6")
def test_fig6_retrieval_metric_choice(benchmark, context):
    """The paper tested dot/cosine/Euclidean for retrieval and chose
    Euclidean.  Verify all three produce valid retrievals on the adapted KG
    and report what each returns for the tracked node."""
    from repro.adaptation import InterpretableKGRetrieval

    def run():
        model = context.train_model("Stealing")
        table = context.embedding_model.token_table
        kg = model.kgs[0]
        node = kg.concept_nodes()[0]
        return {
            metric: InterpretableKGRetrieval(table, metric=metric)
            .retrieve_node(kg, node.node_id).top_words()
            for metric in ("euclidean", "cosine", "dot")
        }, node.text

    words_by_metric, node_text = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"node: {node_text!r}"]
    for metric, words in words_by_metric.items():
        lines.append(f"{metric:>10}: {', '.join(words[:6])}")
    emit("Fig. 6 metric comparison (fresh KG)", "\n".join(lines))
    for words in words_by_metric.values():
        assert words
