"""Metered deployment runtime (beyond the paper): measured Table-I edge costs.

Runs the weak-shift deployment through :class:`EdgeDeploymentSimulator`,
which meters every FLOP the edge device spends, and reports the measured
per-day figures that Table I's edge column models analytically.
"""

import pytest

from repro.data import TrendShiftConfig, TrendShiftStream
from repro.edge import EdgeDeploymentSimulator

from .conftest import emit


@pytest.mark.benchmark(group="runtime")
def test_metered_deployment(benchmark, context):
    def run():
        model = context.train_model("Stealing")
        simulator = EdgeDeploymentSimulator(
            model, normal_anchor_windows=context.normal_anchors("Stealing"))
        stream = TrendShiftStream(context.generator, TrendShiftConfig(
            initial_class="Stealing", shifted_class="Robbery",
            steps_before_shift=6, steps_after_shift=14, windows_per_step=24,
            anomaly_fraction=0.3, window=8, seed=11))
        report = simulator.run(stream)
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    # One "day" = one stream step in the compressed timeline.
    emit("Metered edge deployment (Stealing -> Robbery stream)",
         report.summary()
         + f"\nextrapolated FLOPs/day (1 step/day): "
           f"{report.flops_per_day(steps_per_day=1):.3e}")
    assert report.total_windows == 20 * 24
    assert report.adaptation_steps >= 1
    # The edge cost regime of the paper's Table I: daily cost must sit
    # orders of magnitude below one cloud KG generation (1e15 FLOPs).
    assert report.flops_per_day(steps_per_day=1) < 1e12
    # Inference dominates steady-state; adaptation is the smaller share
    # but non-zero while the trend is shifting.
    assert report.adaptation_flops > 0
