"""Ablation — interpretable-retrieval similarity metric.

The paper tried dot product, cosine and Euclidean similarity for decoding
learned token embeddings back to words, and chose Euclidean.  We quantify
retrieval robustness per metric: perturb known token embeddings with
increasing noise and measure how often each metric still recovers the true
token (top-1 accuracy).

Expected: Euclidean at least matches cosine/dot (consistent with the
paper's choice); all metrics degrade as noise grows.
"""

import pytest

from repro.utils import derive_rng

from .conftest import emit

NOISE_LEVELS = (0.1, 0.3, 0.5, 0.8)
TRIALS = 300


def top1_accuracy(table, metric: str, noise: float, rng) -> float:
    hits = 0
    ids = rng.integers(2, table.vocab_size, size=TRIALS)  # skip specials
    for token_id in ids:
        query = table.vectors[token_id] + noise * rng.normal(size=table.dim)
        best = table.nearest_tokens(query, k=1, metric=metric,
                                    skip_special=True)[0][0]
        hits += int(best == token_id)
    return hits / TRIALS


@pytest.mark.benchmark(group="ablation-retrieval")
def test_ablation_retrieval_metrics(benchmark, context):
    table = context.embedding_model.token_table

    def run_all():
        rng = derive_rng(0, "retrieval-ablation")
        return {
            metric: [top1_accuracy(table, metric, noise, rng)
                     for noise in NOISE_LEVELS]
            for metric in ("euclidean", "cosine", "dot")
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    header = "noise:      " + "  ".join(f"{n:>5.1f}" for n in NOISE_LEVELS)
    lines = [header]
    for metric, accs in results.items():
        lines.append(f"{metric:>10}: " + "  ".join(f"{a:>5.2f}" for a in accs))
    emit("Ablation — retrieval similarity metric (top-1 token recovery)",
         "\n".join(lines))

    # Euclidean is at least competitive at every noise level (paper's pick).
    for i in range(len(NOISE_LEVELS)):
        assert results["euclidean"][i] >= results["dot"][i] - 0.05
    # All metrics degrade with noise.
    for accs in results.values():
        assert accs[0] >= accs[-1]
