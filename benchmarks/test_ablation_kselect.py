"""Ablation — pseudo-label selection rule.

DESIGN.md calls out the paper's K = |delta_m| * N rule as a design choice
worth ablating.  This bench compares, on the weak-shift scenario:

* ``paper``     — K = |delta_m| * N (the proposed rule)
* ``fixed``     — constant K regardless of the mean drop
* ``disabled``  — no adaptation at all (static KG)

Expected: the paper's rule matches or beats fixed-K (it sizes the pseudo-
label set by the evidence of a shift) and clearly beats no adaptation.
"""

import pytest

from repro.adaptation import (
    AdaptationConfig,
    ContinuousAdaptationController,
    MonitorConfig,
)
from repro.data import TrendShiftConfig, TrendShiftStream
from repro.eval import roc_auc

from .conftest import emit

STREAM = TrendShiftConfig(
    initial_class="Stealing", shifted_class="Robbery",
    steps_before_shift=6, steps_after_shift=20, windows_per_step=24,
    anomaly_fraction=0.3, window=8, seed=11)


def run_variant(context, variant: str) -> float:
    model = context.train_model(STREAM.initial_class)
    eval_w, eval_l = context.eval_windows(STREAM.shifted_class)
    if variant != "disabled":
        if variant == "paper":
            monitor = MonitorConfig(window=72, lag=36)
        elif variant == "fixed":
            # Constant-size selection: trigger threshold off, fixed K via
            # min_k with the adaptive term neutralized by max_k_fraction.
            monitor = MonitorConfig(window=72, lag=36, min_k=8,
                                    trigger_threshold=0.0,
                                    max_k_fraction=8 / 72)
        controller = ContinuousAdaptationController(
            model, AdaptationConfig(monitor=monitor),
            normal_anchor_windows=context.normal_anchors(STREAM.initial_class))
    stream = TrendShiftStream(context.generator, STREAM)
    for batch in stream:
        if variant != "disabled":
            controller.process_batch(batch.windows)
    return roc_auc(model.anomaly_scores(eval_w), eval_l)


@pytest.mark.benchmark(group="ablation-kselect")
def test_ablation_k_selection_rule(benchmark, context):
    def run_all():
        return {v: run_variant(context, v)
                for v in ("paper", "fixed", "disabled")}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    body = "\n".join(f"{name:>10}: final AUC on shifted class = {auc:.3f}"
                     for name, auc in results.items())
    emit("Ablation — pseudo-label selection rule (Stealing -> Robbery)", body)
    assert results["paper"] >= results["disabled"] - 0.02
