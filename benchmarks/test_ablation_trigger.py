"""Ablation — adaptation trigger rule.

The paper triggers adaptation from the windowed mean drop (K = |Δm|·N).
This ablation feeds the *same* deployed-model score stream (a weak trend
shift) to three sequential detectors and compares detection latency and
pre-shift false alarms:

* ``paper``        — the |Δm| windowed rule (monitor with threshold),
* ``page-hinkley`` — cumulative downward-deviation test,
* ``cusum``        — two-sided standardized CUSUM.

Expected: all three fire after the true shift; the paper's rule also
yields a magnitude (K) that the alternatives lack.
"""

import pytest

from repro.adaptation import (
    CUSUM,
    AnomalyScoreMonitor,
    MonitorConfig,
    PageHinkley,
)
from repro.data import TrendShiftConfig, TrendShiftStream

from .conftest import emit


@pytest.mark.benchmark(group="ablation-trigger")
def test_ablation_trigger_rules(benchmark, context):
    def run():
        model = context.train_model("Stealing")
        stream_config = TrendShiftConfig(
            initial_class="Stealing", shifted_class="Robbery",
            steps_before_shift=10, steps_after_shift=10, windows_per_step=24,
            anomaly_fraction=0.3, window=8, seed=11)
        stream = TrendShiftStream(context.generator, stream_config)
        shift_at = stream_config.steps_before_shift

        monitor = AnomalyScoreMonitor(MonitorConfig(window=72, lag=36))
        page_hinkley = PageHinkley(delta=0.005, threshold=0.6, burn_in=72)
        cusum = CUSUM(k=0.5, h=6.0, burn_in=72)
        firings: dict[str, list[int]] = {"paper": [], "page-hinkley": [],
                                         "cusum": []}
        for batch in stream:
            scores = model.anomaly_scores(batch.windows)
            monitor.observe(scores)
            if monitor.warmed_up and monitor.select().triggered:
                firings["paper"].append(batch.step)
            for score in scores:
                if page_hinkley.update(float(score)):
                    firings["page-hinkley"].append(batch.step)
                if cusum.update(float(score)):
                    firings["cusum"].append(batch.step)
        return firings, shift_at

    firings, shift_at = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"true shift at stream step {shift_at}"]
    for name, steps in firings.items():
        false_alarms = [s for s in steps if s < shift_at]
        latency = (min((s for s in steps if s >= shift_at), default=None))
        latency_str = (f"{latency - shift_at} steps" if latency is not None
                       else "never")
        lines.append(f"{name:>13}: first post-shift detection after "
                     f"{latency_str}; pre-shift false alarms: "
                     f"{len(false_alarms)}")
    emit("Ablation — adaptation trigger rule (Stealing -> Robbery)",
         "\n".join(lines))

    # The paper's rule must detect the shift with small latency...
    post = [s for s in firings["paper"] if s >= shift_at]
    assert post and min(post) - shift_at <= 3
    # ...and at least one classical alternative must agree the shift is real.
    others = firings["page-hinkley"] + firings["cusum"]
    assert any(s >= shift_at for s in others)
