"""Multi-mission deployment (beyond the paper's single-mission evaluation).

Exercises the model's multi-KG path at benchmark scale: one deployment
detecting three anomaly types (one per semantic cluster) with per-type
posteriors.  The paper describes this capability (Section III-C: the
reasoning embedding concatenates r_T over n KGs; Eq. 5 gives p_{i|A}) but
evaluates single missions only.
"""

import pytest

from repro.eval.multimission import MultiMissionExperiment

from .conftest import emit

MISSIONS = ["Stealing", "Explosion", "Arrest"]


@pytest.mark.benchmark(group="multimission")
def test_three_mission_deployment(benchmark, context):
    experiment = MultiMissionExperiment(context, MISSIONS)
    result = benchmark.pedantic(experiment.run, rounds=1, iterations=1)
    emit("Multi-mission deployment — 3 anomaly types, one model",
         result.summary())
    # Every mission must be detected well above chance...
    for mission, auc in result.auc_per_class.items():
        assert auc > 0.65, f"{mission}: {auc:.3f}"
    # ...and the per-type posterior must separate the three types
    # (chance = 1/3).
    assert result.type_accuracy > 0.5
