"""Baseline comparison (beyond the paper): MissionGNN vs classical detectors.

Situates the paper's approach against the standard non-KG reference points
on the same mission task and the same frozen embeddings:

* nearest-centroid / Mahalanobis / kNN one-class detectors,
* a supervised MLP on pooled embeddings,
* the full MissionGNN decision model.

Two readings matter: (1) absolute mission AUC — how much structured KG
reasoning adds; (2) none of the baselines has KG token embeddings, so none
supports the paper's weight-frozen edge adaptation at all.
"""

import pytest

from repro.baselines import (
    KNNDetector,
    MahalanobisDetector,
    MLPClassifierBaseline,
    NearestCentroidDetector,
)
from repro.eval import roc_auc

from .conftest import emit


@pytest.mark.benchmark(group="baselines")
def test_baselines_vs_missiongnn(benchmark, context):
    def run():
        train_w, train_l = context.train_windows("Stealing")
        test_w, test_l = context.eval_windows("Stealing")
        results = {}
        detectors = {
            "nearest-centroid": NearestCentroidDetector(context.embedding_model),
            "mahalanobis": MahalanobisDetector(context.embedding_model),
            "knn (k=5)": KNNDetector(context.embedding_model, k=5),
            "mlp": MLPClassifierBaseline(context.embedding_model),
        }
        for name, detector in detectors.items():
            detector.fit(train_w, train_l)
            results[name] = roc_auc(detector.anomaly_scores(test_w), test_l)
        model = context.train_model("Stealing")
        results["missiongnn"] = roc_auc(model.anomaly_scores(test_w), test_l)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    body = "\n".join(f"{name:>18}: AUC={auc:.3f}"
                     for name, auc in sorted(results.items(),
                                             key=lambda kv: kv[1]))
    body += "\n\n(only missiongnn supports weight-frozen edge adaptation)"
    emit("Baseline comparison — mission AUC on Stealing", body)
    # MissionGNN must be competitive with the best classical baseline.
    best_classical = max(v for k, v in results.items() if k != "missiongnn")
    assert results["missiongnn"] >= best_classical - 0.1
