"""Shared benchmark fixtures.

One figure-quality experiment context is built per session; all paper-
artifact benches (Fig. 5, Fig. 6, Table I) and ablations reuse its cached
trained models, so the expensive cloud-side training happens once per
mission class.
"""

from __future__ import annotations

import pytest

from repro.eval import ExperimentConfig, ExperimentContext


@pytest.fixture(scope="session")
def context():
    return ExperimentContext(ExperimentConfig())


def emit(title: str, body: str) -> None:
    """Print a paper-artifact reproduction block to the bench output."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")
