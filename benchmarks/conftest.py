"""Shared benchmark fixtures.

One figure-quality pipeline is built per session; all paper-artifact
benches (Fig. 5, Fig. 6, Table I) and ablations reuse its model registry,
so the expensive cloud-side training happens once per mission class.
"""

from __future__ import annotations

import pytest

from repro.api import Pipeline, ReproConfig


@pytest.fixture(scope="session")
def pipeline():
    return Pipeline.from_config(ReproConfig())


@pytest.fixture(scope="session")
def context(pipeline):
    """Backwards-compatible ExperimentContext view of the session pipeline."""
    return pipeline.context


def emit(title: str, body: str) -> None:
    """Print a paper-artifact reproduction block to the bench output."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")
