"""Ablation — decision-model hyperparameters.

Sweeps the two architecture knobs the paper fixes without ablation:

* temporal window T (the short-term transformer's context length)
* GNN hidden dimensionality D (paper: 8 across all layers)

and reports mission AUC after identical small training budgets.

Expected: the paper's settings (T=8, D=8) sit on a plateau — nearby
settings perform comparably, confirming the architecture is not fragile.
"""

import pytest

from repro.eval import roc_auc
from repro.gnn import (
    DecisionModelTrainer,
    MissionGNNConfig,
    MissionGNNModel,
    TrainingConfig,
)

from .conftest import emit

TRAIN_STEPS = 150


def train_and_eval(context, window: int, hidden_dim: int) -> float:
    kg = context.generate_kg("Stealing")
    model = MissionGNNModel([kg], context.embedding_model, MissionGNNConfig(
        temporal_window=window, gnn_hidden_dim=hidden_dim,
        seed=context.config.seed))
    windows, labels = context.dataset.mission_windows(
        "train", "Stealing", window=window, stride=4,
        normal_videos=20, anomaly_videos=8)
    DecisionModelTrainer(model, TrainingConfig(
        steps=TRAIN_STEPS, batch_size=32, learning_rate=3e-3)).train(
        windows, labels)
    # Build matching-window eval data.
    import numpy as np
    from repro.utils import derive_rng
    rng = derive_rng(context.config.seed, "ablation-eval", window)
    eval_windows, eval_labels = [], []
    for _ in range(30):
        eval_windows.append(np.stack([context.generator.normal_frame(rng)
                                      for _ in range(window)]))
        eval_labels.append(0)
    for _ in range(15):
        eval_windows.append(np.stack([
            context.generator.anomaly_frame("Stealing", rng)
            for _ in range(window)]))
        eval_labels.append(1)
    return roc_auc(model.anomaly_scores(np.stack(eval_windows)),
                   np.asarray(eval_labels))


@pytest.mark.benchmark(group="ablation-model")
def test_ablation_temporal_window(benchmark, context):
    def run():
        return {t: train_and_eval(context, window=t, hidden_dim=8)
                for t in (4, 8, 12)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Ablation — temporal window T (GNN dim fixed at 8)",
         "\n".join(f"T={t:>2}: AUC={auc:.3f}" for t, auc in results.items()))
    assert all(auc > 0.6 for auc in results.values())


@pytest.mark.benchmark(group="ablation-model")
def test_ablation_gnn_hidden_dim(benchmark, context):
    def run():
        return {d: train_and_eval(context, window=8, hidden_dim=d)
                for d in (4, 8, 16)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Ablation — GNN hidden dimensionality (T fixed at 8)",
         "\n".join(f"D={d:>2}: AUC={auc:.3f}" for d, auc in results.items()))
    assert results[8] > 0.6  # the paper's setting must work
